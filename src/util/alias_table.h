// Walker's alias method (Vose's O(n) construction). The paper (§4.2)
// recommends alias tables when many hypergeometric variates must be drawn
// from the same distribution, e.g. symmetric pairwise merge trees where each
// tree level reuses one split distribution.

#ifndef SAMPWH_UTIL_ALIAS_TABLE_H_
#define SAMPWH_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace sampwh {

/// Samples an index i in [0, n) with P{i} proportional to weights[i], in
/// O(1) per draw after O(n) construction.
class AliasTable {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  size_t size() const { return probability_.size(); }

  /// Draws an index according to the weight distribution: pick a column I
  /// uniformly, return I with probability r_I and alias(I) otherwise.
  size_t Sample(Pcg64& rng) const;

  /// The per-column acceptance probability r_i (exposed for testing).
  double probability(size_t i) const { return probability_[i]; }
  /// The alias a_i of column i (exposed for testing).
  size_t alias(size_t i) const { return alias_[i]; }

 private:
  std::vector<double> probability_;
  std::vector<size_t> alias_;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_ALIAS_TABLE_H_
