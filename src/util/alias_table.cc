#include "src/util/alias_table.h"

#include <numeric>

#include "src/util/logging.h"

namespace sampwh {

AliasTable::AliasTable(const std::vector<double>& weights) {
  SAMPWH_CHECK(!weights.empty());
  const size_t n = weights.size();
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  SAMPWH_CHECK(total > 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's construction: scale weights so the average is 1, then pair each
  // underfull column with an overfull donor.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    SAMPWH_CHECK(weights[i] >= 0.0);
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding.
  for (const size_t i : large) probability_[i] = 1.0;
  for (const size_t i : small) probability_[i] = 1.0;
}

size_t AliasTable::Sample(Pcg64& rng) const {
  const size_t i = static_cast<size_t>(rng.UniformInt(probability_.size()));
  return rng.NextDouble() < probability_[i] ? i : alias_[i];
}

}  // namespace sampwh
