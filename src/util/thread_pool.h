// A fixed-size worker pool. The warehouse's parallel ingestion samples each
// data-set partition on its own task, mirroring the paper's per-partition
// parallel sampling across cluster nodes.

#ifndef SAMPWH_UTIL_THREAD_POOL_H_
#define SAMPWH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sampwh {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Enqueues a whole batch of tasks under a single lock acquisition and
  /// one notify_all, so a producer fanning out N partition tasks pays one
  /// mutex round-trip instead of N.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_THREAD_POOL_H_
