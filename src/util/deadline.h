// Cooperative per-thread deadlines. A request-handling thread installs a
// steady-clock deadline for the scope of one request; deep library code
// (the memoized merge tree, the prefetch path) polls CheckThreadDeadline()
// between units of expensive work and aborts with DeadlineExceeded once
// the deadline has passed. The probe never consumes randomness and never
// mutates state, so a query that finishes inside its deadline is
// bit-identical to the same query run with no deadline at all.
//
// The scope is thread-local: a thread-per-request server gets per-request
// deadlines without threading a parameter through every merge layer, and
// threads with no installed scope (background checkpoint writer, thread
// pool workers) always pass the check. Scopes nest; the innermost wins.

#ifndef SAMPWH_UTIL_DEADLINE_H_
#define SAMPWH_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "src/util/status.h"

namespace sampwh {

using SteadyTime = std::chrono::steady_clock::time_point;

/// Now, on the monotonic clock deadlines live on.
inline SteadyTime SteadyNow() { return std::chrono::steady_clock::now(); }

/// The deadline `millis` milliseconds from now; millis == 0 means "no
/// deadline" and maps to the infinite future.
SteadyTime DeadlineAfterMillis(uint64_t millis);

/// Milliseconds still left until `deadline`, clamped at 0. Saturates for
/// the no-deadline sentinel.
uint64_t MillisUntil(SteadyTime deadline);

/// Installs `deadline` as this thread's deadline for the scope's lifetime,
/// restoring the previous one (outer request, or none) on destruction.
class ScopedThreadDeadline {
 public:
  explicit ScopedThreadDeadline(SteadyTime deadline);
  ~ScopedThreadDeadline();

  ScopedThreadDeadline(const ScopedThreadDeadline&) = delete;
  ScopedThreadDeadline& operator=(const ScopedThreadDeadline&) = delete;

 private:
  SteadyTime previous_;
  bool previous_active_;
};

/// kOk while this thread has no installed deadline or the installed one
/// has not passed; DeadlineExceeded otherwise. Cheap enough to poll per
/// merge node (one thread-local load plus, when active, one clock read).
Status CheckThreadDeadline();

/// True when a deadline is installed on this thread (regardless of whether
/// it has passed). Handlers use it to skip deadline-only bookkeeping.
bool ThreadDeadlineActive();

}  // namespace sampwh

#endif  // SAMPWH_UTIL_DEADLINE_H_
