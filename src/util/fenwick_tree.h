// Fenwick (binary indexed) tree over non-negative integer weights, with
// prefix-sum search. purgeReservoir (paper Fig. 4, line 9) must repeatedly
// pick a uniformly random victim from a reservoir stored as (value, count)
// pairs — i.e. select the pair whose cumulative count brackets a random
// index — and then decrement that count. The Fenwick tree makes each
// select+update O(log m) instead of the O(m) scan in the paper's pseudocode.

#ifndef SAMPWH_UTIL_FENWICK_TREE_H_
#define SAMPWH_UTIL_FENWICK_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sampwh {

class FenwickTree {
 public:
  /// A tree over `size` slots, all initially 0.
  explicit FenwickTree(size_t size);

  /// A tree initialized from `weights` in O(n).
  explicit FenwickTree(const std::vector<uint64_t>& weights);

  size_t size() const { return size_; }

  /// Adds `delta` to slot i (delta may be negative as long as the slot
  /// value stays non-negative; callers maintain that invariant).
  void Add(size_t i, int64_t delta);

  /// Sum of slots [0, i] inclusive.
  uint64_t PrefixSum(size_t i) const;

  /// Sum of all slots.
  uint64_t Total() const { return total_; }

  /// Value of slot i.
  uint64_t Get(size_t i) const;

  /// Returns the smallest index i such that PrefixSum(i) >= target, for
  /// 1 <= target <= Total(). This maps a uniform random integer in
  /// [1, Total()] to a slot with probability proportional to its weight.
  size_t FindByPrefixSum(uint64_t target) const;

 private:
  size_t size_;
  uint64_t total_;
  std::vector<uint64_t> tree_;  // 1-based internal layout
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_FENWICK_TREE_H_
