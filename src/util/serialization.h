// Binary serialization with bounds-checked decoding. Partition samples are
// persisted in the sample warehouse with varint-compressed counts, so a
// compact histogram stays compact on disk as well as in memory.

#ifndef SAMPWH_UTIL_SERIALIZATION_H_
#define SAMPWH_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace sampwh {

/// Append-only encoder for the warehouse on-disk format.
class BinaryWriter {
 public:
  /// Little-endian fixed-width integers.
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// LEB128 variable-length unsigned integer (1-10 bytes).
  void PutVarint64(uint64_t v);
  /// Zig-zag-mapped signed integer, then varint.
  void PutVarintSigned64(int64_t v);
  /// IEEE-754 double, bit-cast through a fixed 64.
  void PutDouble(double v);
  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);
  /// Raw bytes with no length prefix.
  void PutRaw(const void* data, size_t n);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Decoder over a borrowed byte range; every Get returns OutOfRange on
/// truncated input and Corruption on malformed varints, never reads past
/// the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data), pos_(0) {}

  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetVarintSigned64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_;
};

/// CRC-32 (reflected polynomial 0xEDB88320 — the zlib/PNG checksum) of
/// `data`. Detects every single- and double-bit error at the payload sizes
/// the warehouse stores.
uint32_t Crc32(std::string_view data);

// --- Versioned sample-file envelope (on-disk format v2) --------------------
//
// Every persisted sample is framed so that truncated, torn or bit-rotted
// files are DETECTED on read instead of being silently deserialized:
//
//   fixed32  magic       "SWV2" (little-endian bytes on disk)
//   fixed32  version     kSampleEnvelopeVersion
//   fixed64  payload size in bytes
//   fixed32  CRC-32 of the payload
//   payload  the v1 sample encoding (which begins with its own magic)
//
// v1 files — bare payloads written before the envelope existed — remain
// read-compatible: they start with the sample magic, not the envelope
// magic, and readers fall back to decoding them directly.

inline constexpr uint32_t kSampleEnvelopeMagic = 0x32565753;  // "SWV2"
inline constexpr uint32_t kSampleEnvelopeVersion = 2;
inline constexpr size_t kSampleEnvelopeHeaderBytes = 20;

// The envelope carries no record-type field of its own: the payload's
// leading fixed32 magic identifies the record. Four record types exist:
//
//   kSampleFormatMagic (sample.cc)  — a finalized PartitionSample
//   kSamplerStateRecordMagic        — a mid-stream AnySampler::SaveState
//   kCheckpointRecordMagic          — a StreamIngestor ingest checkpoint
//                                     (which embeds a sampler-state record)
//   kCheckpointDeltaRecordMagic     — a delta-journal record chained onto a
//                                     checkpoint snapshot (WAL framing, not
//                                     the envelope: each record carries its
//                                     own length+CRC header)
//
// The first three ride through WrapSampleEnvelope / UnwrapSampleEnvelope,
// so the CRC layer verifies every persisted record kind uniformly; delta
// records are CRC-framed per record inside the checkpoint WAL instead.
inline constexpr uint32_t kSamplerStateRecordMagic = 0x53535753;  // "SWSS"
inline constexpr uint32_t kCheckpointRecordMagic = 0x504b4357;    // "WCKP"
inline constexpr uint32_t kCheckpointDeltaRecordMagic = 0x544C4457;  // "WDLT"

/// Frames `payload` in a v2 envelope (header + payload bytes).
std::string WrapSampleEnvelope(std::string_view payload);

/// True when `file` begins with the v2 envelope magic (it may still be
/// truncated or corrupt; UnwrapSampleEnvelope verifies).
bool HasSampleEnvelope(std::string_view file);

/// Verifies the envelope framing of `file` (magic, version, payload size,
/// CRC) and on success points `*payload` at the payload bytes inside
/// `file`. Any mismatch — truncation, tear, bit flip, unknown version — is
/// Corruption; the payload is never handed out unverified.
Status UnwrapSampleEnvelope(std::string_view file, std::string_view* payload);

/// Writes `contents` to `path` atomically (write to a temp file in the same
/// directory, then rename).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads the whole file at `path` into `*contents`.
Status ReadFile(const std::string& path, std::string* contents);

}  // namespace sampwh

#endif  // SAMPWH_UTIL_SERIALIZATION_H_
