#include "src/util/fenwick_tree.h"

#include "src/util/logging.h"

namespace sampwh {

FenwickTree::FenwickTree(size_t size)
    : size_(size), total_(0), tree_(size + 1, 0) {}

FenwickTree::FenwickTree(const std::vector<uint64_t>& weights)
    : size_(weights.size()), total_(0), tree_(weights.size() + 1, 0) {
  // O(n) construction: place each weight, then push partial sums upward.
  for (size_t i = 0; i < size_; ++i) {
    tree_[i + 1] += weights[i];
    total_ += weights[i];
  }
  for (size_t i = 1; i <= size_; ++i) {
    const size_t parent = i + (i & (~i + 1));
    if (parent <= size_) tree_[parent] += tree_[i];
  }
}

void FenwickTree::Add(size_t i, int64_t delta) {
  SAMPWH_DCHECK(i < size_);
  total_ = static_cast<uint64_t>(static_cast<int64_t>(total_) + delta);
  for (size_t j = i + 1; j <= size_; j += j & (~j + 1)) {
    tree_[j] = static_cast<uint64_t>(static_cast<int64_t>(tree_[j]) + delta);
  }
}

uint64_t FenwickTree::PrefixSum(size_t i) const {
  SAMPWH_DCHECK(i < size_);
  uint64_t sum = 0;
  for (size_t j = i + 1; j > 0; j -= j & (~j + 1)) {
    sum += tree_[j];
  }
  return sum;
}

uint64_t FenwickTree::Get(size_t i) const {
  uint64_t value = PrefixSum(i);
  if (i > 0) value -= PrefixSum(i - 1);
  return value;
}

size_t FenwickTree::FindByPrefixSum(uint64_t target) const {
  SAMPWH_DCHECK(target >= 1 && target <= total_);
  // Binary lifting over the implicit tree.
  size_t pos = 0;
  size_t bit = 1;
  while ((bit << 1) <= size_) bit <<= 1;
  uint64_t remaining = target;
  for (; bit > 0; bit >>= 1) {
    const size_t next = pos + bit;
    if (next <= size_ && tree_[next] < remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return pos;  // pos is 0-based index of the found slot
}

}  // namespace sampwh
