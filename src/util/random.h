// Pseudo-random number generation, implemented from scratch so that all
// sampling results are reproducible across platforms and standard-library
// versions (std::mt19937 distributions are not portable across vendors).
//
// Two generators are provided:
//   * SplitMix64 — tiny, used for seeding and stream derivation.
//   * Pcg64     — PCG XSL-RR 128/64 (O'Neill 2014), the library workhorse.

#ifndef SAMPWH_UTIL_RANDOM_H_
#define SAMPWH_UTIL_RANDOM_H_

#include <cstdint>

namespace sampwh {

/// SplitMix64 (Steele, Lea & Flood 2014). Passes BigCrush; used here to
/// expand user seeds into full generator state and to derive independent
/// per-thread streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG XSL-RR 128/64: 128-bit LCG state with a 64-bit xorshift-rotate output
/// permutation. Period 2^128 per stream; distinct odd increments select
/// statistically independent streams, which the parallel ingestion layer
/// uses to give every partition sampler its own stream.
class Pcg64 {
 public:
  /// Seeds the generator. `stream` selects one of 2^63 independent
  /// sequences; two generators with equal seeds but distinct streams are
  /// safe to use concurrently.
  explicit Pcg64(uint64_t seed, uint64_t stream = 0);

  /// Next 64 uniformly distributed bits.
  uint64_t NextUint64();

  /// Next 32 uniformly distributed bits.
  uint32_t NextUint32() { return static_cast<uint32_t>(NextUint64() >> 32); }

  /// Uniform double in [0, 1), with 53 random mantissa bits.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1) — never returns exactly 0, which makes it
  /// safe as input to log() in inversion formulas.
  double NextDoubleOpen() {
    return (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound), bound >= 1. Unbiased (Lemire's
  /// multiply-shift with rejection).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive, lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (p clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Derives a child generator whose stream is a function of (this
  /// generator's next output, salt); used to fan out per-partition RNGs.
  Pcg64 Fork(uint64_t salt);

  /// The full 128+128 bit generator state, split into four words so it can
  /// be persisted without a 128-bit integer type in the on-disk format.
  /// FromState(SaveState()) produces a generator that emits the identical
  /// output sequence — the basis of crash-resumable sampling.
  struct State {
    uint64_t state_hi = 0;
    uint64_t state_lo = 0;
    uint64_t inc_hi = 0;
    uint64_t inc_lo = 0;
  };

  State SaveState() const;

  /// Rebuilds a generator from a saved state. The increment's low bit is
  /// forced odd (a structural invariant of PCG), so any four words yield a
  /// valid generator — corrupt input can skew, but never break, the RNG.
  static Pcg64 FromState(const State& state);

 private:
  using u128 = unsigned __int128;

  u128 state_;
  u128 inc_;  // odd
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_RANDOM_H_
