// Special mathematical functions implemented from scratch: log-gamma,
// regularized incomplete beta / gamma, normal CDF and quantile, and binomial
// tail probabilities. These back (i) the exact solution of the paper's
// sampling-rate equation f(q) = p (Section 4.1 / Appendix), (ii) the normal
// quantile z_p in the Eq. (1) approximation, and (iii) the chi-square and
// Kolmogorov-Smirnov p-values used by the statistical verification layer.

#ifndef SAMPWH_UTIL_SPECIAL_FUNCTIONS_H_
#define SAMPWH_UTIL_SPECIAL_FUNCTIONS_H_

#include <cstdint>

namespace sampwh {

/// ln Gamma(x) for x > 0, via the Lanczos approximation (g = 7, 9 terms).
/// Absolute error < 1e-13 over the tested range.
double LogGamma(double x);

/// ln(n!) with a cached table for small n and LogGamma beyond.
double LogFactorial(uint64_t n);

/// ln C(n, k); returns -inf when k > n.
double LogBinomialCoefficient(uint64_t n, uint64_t k);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1],
/// evaluated with the Lentz continued fraction (Numerical Recipes style).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0
/// (series for x < a+1, continued fraction otherwise).
double RegularizedLowerIncompleteGamma(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedUpperIncompleteGamma(double a, double x);

/// Complementary error function, erfc(x), for all real x.
/// Computed via the incomplete gamma function: erfc(x) = Q(1/2, x^2) for
/// x >= 0 and 2 - erfc(-x) for x < 0.
double Erfc(double x);

/// Error function erf(x) = 1 - erfc(x).
double Erf(double x);

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Standard normal quantile Phi^{-1}(p), p in (0,1). Acklam's rational
/// approximation refined with one Halley step against NormalCdf; relative
/// error is at the double-precision noise floor.
double NormalQuantile(double p);

/// P{Binomial(n, q) > m} = I_q(m+1, n-m), the exceedance probability that
/// drives the choice of the Bernoulli rate in Algorithm HB. Exact up to the
/// accuracy of the incomplete beta evaluation; no normal approximation.
double BinomialTailProbability(uint64_t n, double q, uint64_t m);

/// CDF of the chi-square distribution with `df` degrees of freedom.
double ChiSquareCdf(double x, double df);

/// Binomial pmf P{Binomial(n, q) = k}, evaluated in log space.
double BinomialPmf(uint64_t n, double q, uint64_t k);

}  // namespace sampwh

#endif  // SAMPWH_UTIL_SPECIAL_FUNCTIONS_H_
