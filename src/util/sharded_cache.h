// A generic sharded LRU cache: N independent shards, each with its own
// mutex, recency list and byte budget, so readers on different shards never
// contend. This is the building block behind the warehouse read path — the
// deserialized-sample cache and the memoized merge-tree node cache are both
// instances — but it knows nothing about samples: keys and values are
// template parameters and every entry carries an explicit byte charge.
//
// Concurrency model: all operations are safe to call from any thread.
// Values are handed out as shared_ptr<const V>, so a reader can keep using
// an entry after another thread evicts it. Eviction is per shard, strictly
// LRU, triggered when a shard exceeds its slice of the byte budget.

#ifndef SAMPWH_UTIL_SHARDED_CACHE_H_
#define SAMPWH_UTIL_SHARDED_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sampwh {

/// Counters of one cache (aggregated across shards by Stats()). hits /
/// misses / insertions / evictions / invalidations are cumulative since
/// construction; entries / bytes are the current residency.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  /// Entries removed to honor the byte budget (LRU pressure).
  uint64_t evictions = 0;
  /// Entries removed by Erase / EraseIf / Clear (explicit invalidation).
  uint64_t invalidations = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;

  CacheStats& operator+=(const CacheStats& other);
};

namespace cache_internal {

/// Rounds `requested` to a power of two in [1, 256] so shard selection is
/// a mask, not a modulo.
size_t NormalizeShardCount(size_t requested);

/// Finalizing mix (SplitMix64 tail) so shard selection uses high-quality
/// bits even when Hash is the identity on small integers.
uint64_t MixHash(uint64_t h);

}  // namespace cache_internal

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `num_shards` is rounded to a power of two in [1, 256]; `byte_budget`
  /// is split evenly across shards.
  ShardedLruCache(size_t num_shards, uint64_t byte_budget)
      : byte_budget_(byte_budget),
        shards_(cache_internal::NormalizeShardCount(num_shards)) {
    shard_budget_ = byte_budget_ / shards_.size();
  }

  uint64_t byte_budget() const { return byte_budget_; }

  /// The entry for `key`, freshened to most-recently-used; nullptr on miss.
  std::shared_ptr<const Value> Lookup(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// The entry for `key` WITHOUT touching recency order or hit/miss
  /// counters; nullptr on miss. For invariant checks that must observe the
  /// cache without perturbing it (e.g. the stress harness probing for stale
  /// entries mid-run).
  std::shared_ptr<const Value> Peek(const Key& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return nullptr;
    return it->second->value;
  }

  /// Inserts (replacing) `key`, charging `charge` bytes against the shard
  /// budget, and evicts least-recently-used entries until the shard fits
  /// again. An entry larger than the whole shard budget is evicted
  /// immediately — the cache never grows past its budget for one caller.
  void Insert(const Key& key, std::shared_ptr<const Value> value,
              uint64_t charge) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->charge;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(Entry{key, std::move(value), charge});
    shard.index[key] = shard.lru.begin();
    shard.bytes += charge;
    ++shard.stats.insertions;
    while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
  }

  /// Removes `key`; false when absent.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.invalidations;
    return true;
  }

  /// Removes every entry for which `pred(key, value)` is true; returns the
  /// number removed. Takes each shard lock in turn (never all at once).
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t erased = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(it->key, *it->value)) {
          shard.bytes -= it->charge;
          shard.index.erase(it->key);
          it = shard.lru.erase(it);
          ++shard.stats.invalidations;
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Drops every entry. Cumulative counters are preserved.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.stats.invalidations += shard.lru.size();
      shard.lru.clear();
      shard.index.clear();
      shard.bytes = 0;
    }
  }

  CacheStats Stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      CacheStats s = shard.stats;
      s.entries = shard.lru.size();
      s.bytes = shard.bytes;
      total += s;
    }
    return total;
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    uint64_t charge = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index;
    uint64_t bytes = 0;
    CacheStats stats;
  };

  Shard& ShardFor(const Key& key) {
    const uint64_t h = cache_internal::MixHash(Hash{}(key));
    return shards_[h & (shards_.size() - 1)];
  }
  const Shard& ShardFor(const Key& key) const {
    const uint64_t h = cache_internal::MixHash(Hash{}(key));
    return shards_[h & (shards_.size() - 1)];
  }

  uint64_t byte_budget_;
  uint64_t shard_budget_;
  std::vector<Shard> shards_;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_SHARDED_CACHE_H_
