#include "src/util/deadline.h"

namespace sampwh {

namespace {

struct ThreadDeadlineState {
  SteadyTime deadline;
  bool active = false;
};

thread_local ThreadDeadlineState t_deadline;

}  // namespace

SteadyTime DeadlineAfterMillis(uint64_t millis) {
  if (millis == 0) return SteadyTime::max();
  return SteadyNow() + std::chrono::milliseconds(millis);
}

uint64_t MillisUntil(SteadyTime deadline) {
  if (deadline == SteadyTime::max()) return UINT64_MAX;
  const auto left = deadline - SteadyNow();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}

ScopedThreadDeadline::ScopedThreadDeadline(SteadyTime deadline)
    : previous_(t_deadline.deadline), previous_active_(t_deadline.active) {
  t_deadline.deadline = deadline;
  t_deadline.active = true;
}

ScopedThreadDeadline::~ScopedThreadDeadline() {
  t_deadline.deadline = previous_;
  t_deadline.active = previous_active_;
}

Status CheckThreadDeadline() {
  if (!t_deadline.active || t_deadline.deadline == SteadyTime::max()) {
    return Status::OK();
  }
  if (SteadyNow() >= t_deadline.deadline) {
    return Status::DeadlineExceeded("request deadline passed");
  }
  return Status::OK();
}

bool ThreadDeadlineActive() {
  return t_deadline.active && t_deadline.deadline != SteadyTime::max();
}

}  // namespace sampwh
