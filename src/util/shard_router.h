// The striped router in front of the parallel ingestion shards: assigns a
// (dataset, stripe) pair to a shard by hash, so the assignment is a pure
// function of the inputs — every producer routes identically, and a resumed
// ingestor re-derives the same ownership map without coordination. A stripe
// is the unit of ordered sub-stream ownership (one partitioner cursor, one
// sampler RNG stream); the shard that owns it processes all of its batches.

#ifndef SAMPWH_UTIL_SHARD_ROUTER_H_
#define SAMPWH_UTIL_SHARD_ROUTER_H_

#include <cstdint>
#include <string_view>

namespace sampwh {

class ShardRouter {
 public:
  /// `num_shards` >= 1.
  ShardRouter(std::string_view dataset, size_t num_shards)
      : dataset_hash_(HashBytes(dataset)),
        num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// The shard owning `stripe` — stable for the router's lifetime and
  /// across routers built with the same (dataset, num_shards).
  size_t ShardFor(uint64_t stripe) const {
    return static_cast<size_t>(Mix64(dataset_hash_ ^ Mix64(stripe)) %
                               num_shards_);
  }

  /// FNV-1a over the dataset name, finalized through Mix64.
  static uint64_t HashBytes(std::string_view bytes) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return Mix64(h);
  }

  /// SplitMix64 finalizer: a full-avalanche 64-bit mix.
  static uint64_t Mix64(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t dataset_hash_;
  size_t num_shards_;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_SHARD_ROUTER_H_
