#include "src/util/thread_pool.h"

#include "src/util/logging.h"

namespace sampwh {

ThreadPool::ThreadPool(size_t num_threads) {
  SAMPWH_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SAMPWH_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    SAMPWH_CHECK(!shutting_down_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
    in_flight_ += tasks.size();
  }
  work_available_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sampwh
