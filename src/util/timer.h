// Wall-clock and CPU timers for the benchmark harnesses. The paper reports
// elapsed time decomposed into sample time and merge time (Figs. 9-14); the
// CPU timer lets the harness also report CPU usage as the paper's
// instrumented executables did.

#ifndef SAMPWH_UTIL_TIMER_H_
#define SAMPWH_UTIL_TIMER_H_

#include <cstdint>

namespace sampwh {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart();
  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const;

 private:
  int64_t start_ns_;
};

/// Per-process CPU-time stopwatch (sums over all threads).
class CpuTimer {
 public:
  CpuTimer() { Restart(); }
  void Restart();
  /// CPU-seconds consumed since construction or the last Restart().
  double ElapsedSeconds() const;

 private:
  int64_t start_ns_;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_TIMER_H_
