// Non-uniform random variate generation built from scratch (cf. Devroye
// 1986, the paper's reference [5]): binomial (inversion + Hörmann's BTRS
// rejection), geometric skips for fast Bernoulli streams, hypergeometric
// (mode-centered inversion on the paper's recurrence Eq. 3), and Zipf.

#ifndef SAMPWH_UTIL_DISTRIBUTIONS_H_
#define SAMPWH_UTIL_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace sampwh {

/// Draws Binomial(n, p). Dispatches between exact CDF inversion (small
/// n*p) and the BTRS transformed-rejection algorithm (Hörmann 1993) for
/// large n*p; both are exact samplers. Used by purgeBernoulli (Fig. 3) to
/// thin (value, count) pairs without expanding them.
uint64_t SampleBinomial(Pcg64& rng, uint64_t n, double p);

/// Number of failures before the first success in Bernoulli(p) trials,
/// i.e. Geometric(p) on {0, 1, 2, ...}. Lets a Bern(p) stream sampler jump
/// directly between successive inclusions instead of flipping a coin per
/// element.
uint64_t SampleGeometricSkip(Pcg64& rng, double p);

/// The hypergeometric distribution of Eq. (2): P{L = l} with
///   P(l) = C(n1, l) C(n2, k - l) / C(n1 + n2, k),
/// the law of the number of elements a size-k simple random sample of
/// D1 ∪ D2 takes from D1. Provides pmf evaluation, full pmf vectors for
/// alias-table construction (the paper's repeated-merge optimization), and
/// exact sampling.
class HypergeometricDistribution {
 public:
  /// n1, n2: the two partition sizes |D1|, |D2|; k: merged sample size,
  /// k <= n1 + n2.
  HypergeometricDistribution(uint64_t n1, uint64_t n2, uint64_t k);

  uint64_t n1() const { return n1_; }
  uint64_t n2() const { return n2_; }
  uint64_t k() const { return k_; }

  /// Smallest / largest l with P(l) > 0: max(0, k - n2) and min(k, n1).
  uint64_t support_min() const { return support_min_; }
  uint64_t support_max() const { return support_max_; }

  /// The mode of the distribution.
  uint64_t Mode() const;

  /// P{L = l}; 0 outside the support. Evaluated from a log-space anchor and
  /// the recurrence P(l+1)/P(l) = (k-l)(n1-l) / ((l+1)(n2-k+l+1)) (Eq. 3).
  double Pmf(uint64_t l) const;

  /// The full vector [P(support_min), ..., P(support_max)], computed with
  /// one pass of the Eq. (3) recurrence; feed this to AliasTable for O(1)
  /// repeated generation.
  std::vector<double> PmfVector() const;

  /// Draws L by inversion zig-zagging outward from the mode, so the
  /// expected number of pmf evaluations is O(sqrt(variance)) rather than
  /// O(k). Exact.
  uint64_t Sample(Pcg64& rng) const;

 private:
  uint64_t n1_, n2_, k_;
  uint64_t support_min_, support_max_;
};

/// Zipf(s) generator over {1, ..., n}: P{V = v} ∝ 1 / v^s. Builds the exact
/// cumulative table once (O(n) setup, O(log n) per draw); the paper's
/// Zipfian workload uses n = 4000.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Draws a Zipf-distributed value in [1, n].
  uint64_t Sample(Pcg64& rng) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P{V <= i + 1}
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_DISTRIBUTIONS_H_
