#include "src/testing/chaos_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace sampwh {

namespace {

constexpr int kPollMillis = 50;
constexpr size_t kChunkBytes = 16 * 1024;

// Local sibling of server/wire.h's WriteAll (the testing library must not
// depend on the server library).
bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

void HardReset(int fd) {
  if (fd < 0) return;
  struct linger lin;
  lin.l_onoff = 1;
  lin.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd);
}

Result<int> ConnectLoopback(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad proxy upstream host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

std::string_view NetFaultKindToString(NetFaultKind kind) {
  switch (kind) {
    case NetFaultKind::kNone:
      return "none";
    case NetFaultKind::kRefuse:
      return "refuse";
    case NetFaultKind::kReset:
      return "reset";
    case NetFaultKind::kBlackhole:
      return "blackhole";
    case NetFaultKind::kTruncate:
      return "truncate";
    case NetFaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

ChaosProxy::ChaosProxy(Options options)
    : options_(std::move(options)), rng_(options_.seed, /*stream=*/0x43505859) {}

Result<std::unique_ptr<ChaosProxy>> ChaosProxy::Start(Options options) {
  std::unique_ptr<ChaosProxy> proxy(new ChaosProxy(std::move(options)));
  SAMPWH_RETURN_IF_ERROR(proxy->Listen());
  proxy->accept_thread_ = std::thread([p = proxy.get()] { p->AcceptLoop(); });
  return proxy;
}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral: the proxy is always a test fixture
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad proxy host: " + host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void ChaosProxy::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);

    // Reap finished connections regardless of accept traffic so a long
    // quiet spell still frees threads.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->pumps_live.load(std::memory_order_acquire) == 0) {
          if ((*it)->c2s.joinable()) (*it)->c2s.join();
          if ((*it)->s2c.joinable()) (*it)->s2c.join();
          ::close((*it)->client_fd);
          ::close((*it)->server_fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }

    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    if (partitioned_.load(std::memory_order_acquire)) {
      HardReset(client_fd);
      continue;
    }
    const NetFaultKind fault = NextFault(kChaosSiteAccept);
    if (fault == NetFaultKind::kRefuse) {
      ::close(client_fd);
      continue;
    }
    if (fault == NetFaultKind::kReset) {
      HardReset(client_fd);
      continue;
    }

    Result<int> server_fd = ConnectLoopback(options_.upstream_host,
                                            options_.upstream_port);
    if (!server_fd.ok()) {
      // Upstream genuinely down: behave like it — reset the client.
      HardReset(client_fd);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->client_fd = client_fd;
    conn->server_fd = server_fd.value();
    Conn* raw = conn.get();
    conn->c2s = std::thread([this, raw] {
      Pump(raw, raw->client_fd, raw->server_fd, kChaosSiteClientToServer);
    });
    conn->s2c = std::thread([this, raw] {
      Pump(raw, raw->server_fd, raw->client_fd, kChaosSiteServerToClient);
    });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

// Marks the connection dead, arms RST-on-close (SO_LINGER 0) and wakes both
// pump threads via shutdown(SHUT_RD). The fds themselves are closed only by
// the last pump thread to exit, so no thread ever polls an fd number that
// the kernel may have reused for a new connection.
void ChaosProxy::AbortConn(Conn* conn) {
  if (!conn->dead.exchange(true, std::memory_order_acq_rel)) {
    struct linger lin;
    lin.l_onoff = 1;
    lin.l_linger = 0;
    ::setsockopt(conn->client_fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    ::setsockopt(conn->server_fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  }
  // SHUT_RD sends nothing on the wire but makes local recv() return EOF, so
  // a pump blocked in poll() wakes immediately; the peers see the RST when
  // the last pump closes the lingering sockets.
  ::shutdown(conn->client_fd, SHUT_RD);
  ::shutdown(conn->server_fd, SHUT_RD);
}

void ChaosProxy::Pump(Conn* conn, int src_fd, int dst_fd, const char* site) {
  bool blackholed = false;
  char buf[kChunkBytes];
  while (!stopping_.load(std::memory_order_acquire) &&
         !conn->dead.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = src_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const ssize_t n = ::recv(src_fd, buf, sizeof(buf), 0);
    if (conn->dead.load(std::memory_order_acquire)) break;
    if (n == 0) {
      // Clean EOF: pass the half-close through so orderly shutdowns look
      // orderly on the far side.
      ::shutdown(dst_fd, SHUT_WR);
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // reset or closed under us
    }
    if (blackholed) continue;  // swallow silently, connection stays up

    switch (NextFault(site)) {
      case NetFaultKind::kNone:
      case NetFaultKind::kRefuse: {  // accept-only kind: pass through here
        break;
      }
      case NetFaultKind::kReset: {
        // Mid-stream kill: the peer sees ECONNRESET, possibly inside a
        // frame.
        AbortConn(conn);
        break;
      }
      case NetFaultKind::kBlackhole:
        blackholed = true;
        continue;
      case NetFaultKind::kTruncate: {
        const size_t prefix = TruncatePrefix(static_cast<size_t>(n));
        if (prefix > 0) {
          (void)SendAll(dst_fd, buf, prefix);
        }
        AbortConn(conn);
        break;
      }
      case NetFaultKind::kDelay: {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(options_.delay_millis);
        while (std::chrono::steady_clock::now() < until &&
               !stopping_.load(std::memory_order_acquire) &&
               !conn->dead.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        break;
      }
    }
    if (conn->dead.load(std::memory_order_acquire)) break;
    if (!SendAll(dst_fd, buf, static_cast<size_t>(n))) break;
  }
  // Pumps never close fds: the reaper (accept loop) and Stop() do, after
  // joining both pump threads, so no thread can race a close against a
  // kernel fd-number reuse. On an aborted connection SO_LINGER 0 is armed
  // and that deferred close emits the RSTs.
  conn->pumps_live.fetch_sub(1, std::memory_order_acq_rel);
}

NetFaultKind ChaosProxy::NextFault(const std::string& site) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    sites_[site].hits++;  // track hits even when disarmed
    return NetFaultKind::kNone;
  }
  SiteState& state = it->second;
  state.hits++;
  if (state.kind == NetFaultKind::kNone) return NetFaultKind::kNone;
  if (state.probability > 0.0) {
    if (rng_.Bernoulli(state.probability)) {
      state.fired++;
      return state.kind;
    }
    return NetFaultKind::kNone;
  }
  if (state.skip > 0) {
    state.skip--;
    return NetFaultKind::kNone;
  }
  if (state.count == 0) return NetFaultKind::kNone;
  state.count--;
  state.fired++;
  return state.kind;
}

size_t ChaosProxy::TruncatePrefix(size_t total) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  if (total <= 1) return 0;
  return static_cast<size_t>(rng_.UniformInt(total));
}

void ChaosProxy::Arm(const std::string& site, NetFaultKind kind,
                     uint64_t count, uint64_t skip) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  SiteState& state = sites_[site];
  state.kind = kind;
  state.count = count;
  state.skip = skip;
  state.probability = 0.0;
}

void ChaosProxy::ArmRandom(const std::string& site, NetFaultKind kind,
                           double probability) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  SiteState& state = sites_[site];
  state.kind = kind;
  state.count = 0;
  state.skip = 0;
  state.probability = probability;
}

void ChaosProxy::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.kind = NetFaultKind::kNone;
  it->second.count = 0;
  it->second.skip = 0;
  it->second.probability = 0.0;
}

void ChaosProxy::DisarmAll() {
  std::lock_guard<std::mutex> lock(sites_mu_);
  for (auto& [site, state] : sites_) {
    state.kind = NetFaultKind::kNone;
    state.count = 0;
    state.skip = 0;
    state.probability = 0.0;
  }
}

void ChaosProxy::Partition() {
  partitioned_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) AbortConn(conn.get());
}

void ChaosProxy::Heal() {
  DisarmAll();
  partitioned_.store(false, std::memory_order_release);
}

uint64_t ChaosProxy::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(sites_mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t ChaosProxy::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(sites_mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

void ChaosProxy::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::list<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    AbortConn(conn.get());
    if (conn->c2s.joinable()) conn->c2s.join();
    if (conn->s2c.joinable()) conn->s2c.join();
    ::close(conn->client_fd);
    ::close(conn->server_fd);
  }
}

Result<std::unique_ptr<BlackholePort>> BlackholePort::Open() {
  std::unique_ptr<BlackholePort> hole(new BlackholePort());
  hole->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (hole->listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  if (::inet_pton(AF_INET, hole->host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + hole->host_);
  }
  if (::bind(hole->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  // Minimal backlog, never accepted from: once the queue fills, the kernel
  // drops further SYNs and new connect() attempts hang in SYN retry.
  if (::listen(hole->listen_fd_, 1) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(hole->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  hole->port_ = ntohs(bound.sin_port);

  // Fill the accept queue with non-blocking connects. listen(,1) admits a
  // couple of established connections; the rest stay SYN_SENT client-side,
  // which is fine — they cost nothing and guarantee the queue is full.
  for (int i = 0; i < 8; i++) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    const int fl = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    sockaddr_in target;
    std::memset(&target, 0, sizeof(target));
    target.sin_family = AF_INET;
    target.sin_port = htons(hole->port_);
    ::inet_pton(AF_INET, hole->host_.c_str(), &target.sin_addr);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&target), sizeof(target));
    hole->filler_fds_.push_back(fd);
  }
  return hole;
}

BlackholePort::~BlackholePort() {
  for (const int fd : filler_fds_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

}  // namespace sampwh
