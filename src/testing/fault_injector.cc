#include "src/testing/fault_injector.h"

namespace sampwh {

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kIOError:
      return "io-error";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kCrashBeforeRename:
      return "crash-before-rename";
    case FaultKind::kCorruptRead:
      return "corrupt-read";
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed, 0xFA17ULL) {}

void FaultInjector::Arm(const std::string& site, FaultKind kind,
                        uint64_t count, uint64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.kind = kind;
  state.count = count;
  state.skip = skip;
  state.probability = 0.0;
}

void FaultInjector::ArmRandom(const std::string& site, FaultKind kind,
                              double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.kind = kind;
  state.count = 0;
  state.skip = 0;
  state.probability = probability;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.kind = FaultKind::kNone;
  it->second.count = 0;
  it->second.skip = 0;
  it->second.probability = 0.0;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, state] : sites_) {
    state.kind = FaultKind::kNone;
    state.count = 0;
    state.skip = 0;
    state.probability = 0.0;
  }
}

FaultKind FaultInjector::Next(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  ++state.hits;
  if (state.kind == FaultKind::kNone) return FaultKind::kNone;
  if (state.probability > 0.0) {
    if (!rng_.Bernoulli(state.probability)) return FaultKind::kNone;
    ++state.fired;
    return state.kind;
  }
  if (state.skip > 0) {
    --state.skip;
    return FaultKind::kNone;
  }
  if (state.count == 0) return FaultKind::kNone;
  --state.count;
  ++state.fired;
  return state.kind;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

uint64_t FaultInjector::TotalFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.fired;
  return total;
}

size_t FaultInjector::TornPrefixLength(size_t total_bytes) {
  if (total_bytes < 2) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return 1 + static_cast<size_t>(rng_.UniformInt(total_bytes - 1));
}

size_t FaultInjector::CorruptByteIndex(size_t total_bytes) {
  if (total_bytes == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(rng_.UniformInt(total_bytes));
}

}  // namespace sampwh
