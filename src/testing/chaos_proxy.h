// Seeded network fault injection for the warehouse serving path: an
// in-process TCP chaos proxy that sits in front of any WarehouseServer (or
// any TCP daemon) and misbehaves on command. The companion of
// testing/fault_injector.h one failure domain up: where the store injector
// tears writes and corrupts reads, the proxy drops, delays, black-holes,
// truncates mid-frame and hard-resets connections — the faults a warehouse
// client and shard coordinator must survive.
//
// Faults are armed at NAMED SITES, exactly like the storage injector:
//
//   "accept"  — each incoming connection (kRefuse / kReset fire here)
//   "c2s"     — each client->server chunk pumped
//   "s2c"     — each server->client chunk pumped
//
// with either a deterministic plan ("pass 3 chunks, then black-hole") or a
// seeded probabilistic one ("reset ~2% of chunks"), so every failing
// schedule is reproducible from the proxy seed. Partition()/Heal() model a
// node vanishing wholesale: every live connection is hard-reset and new
// ones are refused until healed.
//
// The proxy forwards byte streams verbatim when no fault fires, so a
// client talking through a quiet proxy is bit-for-bit equivalent to
// talking to the server directly.

#ifndef SAMPWH_TESTING_CHAOS_PROXY_H_
#define SAMPWH_TESTING_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace sampwh {

/// What happens when a chaos site fires.
enum class NetFaultKind : uint8_t {
  kNone = 0,
  /// Accept site: the incoming connection is closed before any byte moves
  /// (connection refused, as a crashed or absent daemon would).
  kRefuse = 1,
  /// The connection is hard-reset (SO_LINGER 0): the peer sees ECONNRESET,
  /// never a clean FIN.
  kReset = 2,
  /// The direction goes silent: bytes are swallowed from this chunk on,
  /// but the connection stays open — the peer blocks until its own
  /// timeout. Sticky for the connection's lifetime (a resumed stream after
  /// a hole would be framing garbage anyway).
  kBlackhole = 3,
  /// A seeded prefix of the current chunk is forwarded, then the
  /// connection is hard-reset — a tear in the middle of a wire frame.
  kTruncate = 4,
  /// The chunk is forwarded after the armed delay (per Options), modeling
  /// congestion or a GC'd peer without breaking the stream.
  kDelay = 5,
};

std::string_view NetFaultKindToString(NetFaultKind kind);

inline constexpr char kChaosSiteAccept[] = "accept";
inline constexpr char kChaosSiteClientToServer[] = "c2s";
inline constexpr char kChaosSiteServerToClient[] = "s2c";

/// One proxy guards one upstream address. Start several to wrap a sharded
/// deployment node by node.
class ChaosProxy {
 public:
  struct Options {
    std::string upstream_host = "127.0.0.1";
    uint16_t upstream_port = 0;
    /// Seeds the probabilistic schedules and truncation prefix draws.
    uint64_t seed = 0;
    /// How long a kDelay fault stalls its chunk.
    int delay_millis = 100;
  };

  /// Binds an ephemeral loopback port and starts proxying to the upstream.
  static Result<std::unique_ptr<ChaosProxy>> Start(Options options);

  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Deterministic arming: at `site`, pass the first `skip` hits through,
  /// then fire `kind` on the next `count` hits, then return to kNone.
  /// Re-arming a site replaces its previous plan.
  void Arm(const std::string& site, NetFaultKind kind, uint64_t count = 1,
           uint64_t skip = 0);

  /// Probabilistic arming: every hit of `site` fires `kind` with
  /// probability `probability`, drawn from the proxy's seeded RNG.
  void ArmRandom(const std::string& site, NetFaultKind kind,
                 double probability);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// Node-vanishes mode: hard-resets every live connection and refuses new
  /// ones until Heal(). Idempotent.
  void Partition();
  /// Ends a Partition(); also clears armed schedules so the node comes
  /// back clean.
  void Heal();
  bool partitioned() const {
    return partitioned_.load(std::memory_order_acquire);
  }

  /// Observability for schedule assertions.
  uint64_t HitCount(const std::string& site) const;
  uint64_t FiredCount(const std::string& site) const;
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Stops proxying and joins every thread; live connections are reset.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  struct SiteState {
    NetFaultKind kind = NetFaultKind::kNone;
    uint64_t skip = 0;
    uint64_t count = 0;
    double probability = 0.0;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  struct Conn {
    int client_fd = -1;
    int server_fd = -1;
    std::thread c2s;
    std::thread s2c;
    std::atomic<bool> dead{false};
    std::atomic<int> pumps_live{2};
  };

  explicit ChaosProxy(Options options);

  Status Listen();
  void AcceptLoop();
  /// Pumps one direction until EOF, fault or shutdown. `site` names the
  /// direction's chaos site.
  void Pump(Conn* conn, int src_fd, int dst_fd, const char* site);

  /// Draws the fault for this hit of `site` (kNone when disarmed).
  NetFaultKind NextFault(const std::string& site);
  /// Seeded prefix length for a truncation of a `total`-byte chunk.
  size_t TruncatePrefix(size_t total);

  /// Marks `conn` dead, arms RST-on-close and wakes both pumps; the last
  /// pump thread to exit closes the fds.
  static void AbortConn(Conn* conn);

  Options options_;
  std::string host_ = "127.0.0.1";
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> partitioned_{false};

  mutable std::mutex sites_mu_;
  Pcg64 rng_;
  std::unordered_map<std::string, SiteState> sites_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;

  std::atomic<uint64_t> connections_accepted_{0};
};

/// A loopback port where connect() attempts hang: the listener's accept
/// queue is pre-filled and never drained, so further SYNs are dropped and
/// the caller sits in SYN-retry limbo — the deterministic equivalent of a
/// black-holed address, without touching routing. Used to test connect
/// timeouts.
class BlackholePort {
 public:
  static Result<std::unique_ptr<BlackholePort>> Open();
  ~BlackholePort();

  BlackholePort(const BlackholePort&) = delete;
  BlackholePort& operator=(const BlackholePort&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  BlackholePort() = default;

  std::string host_ = "127.0.0.1";
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  /// The queue-filling sockets, kept open for the port's lifetime.
  std::vector<int> filler_fds_;
};

}  // namespace sampwh

#endif  // SAMPWH_TESTING_CHAOS_PROXY_H_
