// Seeded fault injection for the persistence path. Production code is
// instrumented at NAMED SITES (a string per operation class); a test arms a
// site with a fault kind and the instrumented code applies the fault on its
// next hits. Faults are either deterministic ("fail the next 2 writes") or
// probabilistic with a seeded RNG ("fail ~1% of reads"), so every failing
// schedule is reproducible from the injector seed.
//
// The injector is linked into both sample-store backends and the warehouse
// prefetch path; with no sites armed every hit is a single mutex-guarded
// map probe, so the hooks stay in production builds.

#ifndef SAMPWH_TESTING_FAULT_INJECTOR_H_
#define SAMPWH_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/util/random.h"

namespace sampwh {

/// What happens at an armed injection site.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation fails with Status::IOError and leaves no side effects —
  /// a transient environmental fault (EIO, ENOSPC). Retry-safe.
  kIOError = 1,
  /// A write persists only a prefix of its bytes and then the process
  /// "crashes": the destination file is replaced by the torn prefix and the
  /// operation reports IOError. Must NOT be retried — the tear is left
  /// behind for Recover() to quarantine.
  kTornWrite = 2,
  /// A write stops before its atomic rename: the temp file is left behind,
  /// the destination is untouched, the operation reports IOError. Recover()
  /// drops the orphan temp.
  kCrashBeforeRename = 3,
  /// A read succeeds at the IO level but one bit of the returned buffer is
  /// flipped — simulated media corruption the CRC layer must catch.
  kCorruptRead = 4,
};

std::string_view FaultKindToString(FaultKind kind);

// Injection sites instrumented in the store backends and query prefetch.
inline constexpr char kFaultSitePutWrite[] = "sample_store.put.write";
inline constexpr char kFaultSiteGetRead[] = "sample_store.get.read";
inline constexpr char kFaultSiteDelete[] = "sample_store.delete";
inline constexpr char kFaultSiteGetManyTask[] = "sample_store.get_many.task";
inline constexpr char kFaultSiteCheckpointWrite[] =
    "sample_store.checkpoint.write";
inline constexpr char kFaultSiteCheckpointRead[] =
    "sample_store.checkpoint.read";
/// Group-committed delta appends to a checkpoint WAL. kTornWrite persists a
/// prefix of the appended batch (the classic torn tail); kIOError appends
/// nothing. Appends are never retried — the caller must rotate to a fresh
/// snapshot generation after any failure.
inline constexpr char kFaultSiteWalAppend[] =
    "sample_store.checkpoint.wal_append";

/// Thread-safe; one injector is typically shared by a store and the test
/// driving it.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  /// Deterministic arming: at `site`, pass the first `skip` hits through,
  /// then fire `kind` on the next `count` hits, then return to kNone.
  /// Re-arming a site replaces its previous plan (hit counters persist).
  void Arm(const std::string& site, FaultKind kind, uint64_t count = 1,
           uint64_t skip = 0);

  /// Probabilistic arming: every hit of `site` fires `kind` with
  /// probability `probability`, drawn from the injector's seeded RNG.
  void ArmRandom(const std::string& site, FaultKind kind, double probability);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// Instrumentation side: the fault to apply at this hit of `site`
  /// (kNone when disarmed or exhausted).
  FaultKind Next(const std::string& site);

  /// Observability: how often `site` was reached / actually faulted.
  uint64_t HitCount(const std::string& site) const;
  uint64_t FiredCount(const std::string& site) const;
  uint64_t TotalFired() const;

  /// For kTornWrite: how many of `total_bytes` survive the tear — seeded,
  /// in [1, total_bytes - 1] (0 when the write is too small to tear).
  size_t TornPrefixLength(size_t total_bytes);

  /// For kCorruptRead: which byte of a `total_bytes` buffer gets a bit
  /// flipped.
  size_t CorruptByteIndex(size_t total_bytes);

 private:
  struct SiteState {
    FaultKind kind = FaultKind::kNone;
    uint64_t skip = 0;         // deterministic: hits to pass through first
    uint64_t count = 0;        // deterministic: remaining hits to fail
    double probability = 0.0;  // probabilistic mode when > 0
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  mutable std::mutex mu_;
  Pcg64 rng_;
  std::unordered_map<std::string, SiteState> sites_;
};

}  // namespace sampwh

#endif  // SAMPWH_TESTING_FAULT_INJECTOR_H_
