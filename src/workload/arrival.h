// Arrival-pattern simulators (§2): the warehouse must cope with fluctuating
// data rates — the on-the-fly ratio-trigger partitioner exists exactly for
// streams whose rate "overwhelms" expectations. These simulators produce
// (timestamp, value) pairs on a virtual clock so the temporal and
// ratio-trigger partitioners can be exercised deterministically.

#ifndef SAMPWH_WORKLOAD_ARRIVAL_H_
#define SAMPWH_WORKLOAD_ARRIVAL_H_

#include <cstdint>

#include "src/core/types.h"
#include "src/util/random.h"
#include "src/workload/generators.h"

namespace sampwh {

/// A timestamped data element, timestamps in abstract virtual ticks.
struct TimedValue {
  uint64_t timestamp;
  Value value;
};

/// Shape of the inter-arrival process.
enum class ArrivalPattern {
  kSteady,   ///< constant inter-arrival gap
  kBursty,   ///< alternating fast and slow phases
  kPoisson,  ///< geometric (memoryless) inter-arrival gaps
};

class ArrivalSimulator {
 public:
  struct Options {
    ArrivalPattern pattern = ArrivalPattern::kSteady;
    /// Base inter-arrival gap in ticks (mean gap for kPoisson).
    uint64_t base_gap = 1;
    /// kBursty: gap multiplier during slow phases.
    uint64_t slow_factor = 16;
    /// kBursty: elements per phase before switching.
    uint64_t phase_length = 1024;
    uint64_t seed = 42;
  };

  /// Wraps `generator`, assigning each produced value an arrival timestamp.
  ArrivalSimulator(DataGenerator generator, const Options& options);

  bool HasNext() const { return generator_.HasNext(); }
  TimedValue Next();

 private:
  DataGenerator generator_;
  Options options_;
  Pcg64 rng_;
  uint64_t now_ = 0;
  uint64_t produced_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_WORKLOAD_ARRIVAL_H_
