#include "src/workload/arrival.h"

#include <utility>

#include "src/util/distributions.h"

namespace sampwh {

ArrivalSimulator::ArrivalSimulator(DataGenerator generator,
                                   const Options& options)
    : generator_(std::move(generator)),
      options_(options),
      rng_(options.seed) {}

TimedValue ArrivalSimulator::Next() {
  uint64_t gap = options_.base_gap;
  switch (options_.pattern) {
    case ArrivalPattern::kSteady:
      break;
    case ArrivalPattern::kBursty: {
      const bool slow_phase =
          (produced_ / options_.phase_length) % 2 == 1;
      if (slow_phase) gap *= options_.slow_factor;
      break;
    }
    case ArrivalPattern::kPoisson:
      // Geometric gaps give a memoryless discrete-time arrival process.
      gap = 1 + SampleGeometricSkip(
                    rng_, 1.0 / static_cast<double>(options_.base_gap + 1));
      break;
  }
  now_ += gap;
  ++produced_;
  return TimedValue{now_, generator_.Next()};
}

}  // namespace sampwh
