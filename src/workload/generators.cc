#include "src/workload/generators.h"

#include "src/util/logging.h"

namespace sampwh {

std::string_view DataKindToString(DataKind kind) {
  switch (kind) {
    case DataKind::kUnique:
      return "unique";
    case DataKind::kUniform:
      return "uniform";
    case DataKind::kZipf:
      return "zipfian";
  }
  return "unknown";
}

DataGenerator::DataGenerator(DataKind kind, uint64_t count, Value first_value,
                             uint64_t range, double s, uint64_t seed)
    : kind_(kind),
      count_(count),
      next_unique_(first_value),
      range_(range),
      rng_(seed) {
  if (kind == DataKind::kZipf) {
    zipf_ = std::make_shared<const ZipfGenerator>(range, s);
  }
}

DataGenerator DataGenerator::Unique(uint64_t count, Value first_value) {
  return DataGenerator(DataKind::kUnique, count, first_value, 0, 0.0, 0);
}

DataGenerator DataGenerator::Uniform(uint64_t count, uint64_t range,
                                     uint64_t seed) {
  SAMPWH_CHECK(range >= 1);
  return DataGenerator(DataKind::kUniform, count, 0, range, 0.0, seed);
}

DataGenerator DataGenerator::Zipf(uint64_t count, uint64_t range, double s,
                                  uint64_t seed) {
  SAMPWH_CHECK(range >= 1);
  return DataGenerator(DataKind::kZipf, count, 0, range, s, seed);
}

DataGenerator DataGenerator::Make(DataKind kind, uint64_t count,
                                  uint64_t partition_index, uint64_t seed) {
  switch (kind) {
    case DataKind::kUnique:
      return Unique(count,
                    static_cast<Value>(partition_index * count) + 1);
    case DataKind::kUniform:
      return Uniform(count, kPaperUniformRange,
                     seed ^ (partition_index * 0x9e3779b97f4a7c15ULL));
    case DataKind::kZipf:
    default:
      return Zipf(count, kPaperZipfRange, kPaperZipfExponent,
                  seed ^ (partition_index * 0xd1b54a32d192ed03ULL));
  }
}

Value DataGenerator::Next() {
  SAMPWH_DCHECK(HasNext());
  ++produced_;
  switch (kind_) {
    case DataKind::kUnique:
      return next_unique_++;
    case DataKind::kUniform:
      return static_cast<Value>(rng_.UniformInt(range_)) + 1;
    case DataKind::kZipf:
    default:
      return static_cast<Value>(zipf_->Sample(rng_));
  }
}

std::vector<Value> DataGenerator::Take(uint64_t n) {
  std::vector<Value> out;
  out.reserve(n);
  while (n-- > 0 && HasNext()) out.push_back(Next());
  return out;
}

}  // namespace sampwh
