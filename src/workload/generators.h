// The paper's three experimental data sets (§5): unique integers 1..N,
// integers uniform on [1, 1,000,000], and Zipf-distributed integers on
// [1, 4000]. Generators are streaming and seeded so that partitioned runs
// are reproducible and partitions can be produced independently (each
// partition generator gets its own RNG stream).

#ifndef SAMPWH_WORKLOAD_GENERATORS_H_
#define SAMPWH_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/types.h"
#include "src/util/distributions.h"
#include "src/util/random.h"

namespace sampwh {

enum class DataKind {
  kUnique,   ///< distinct integers (every value appears exactly once)
  kUniform,  ///< uniform on [1, uniform_range]
  kZipf,     ///< Zipf(s) on [1, zipf_range]
};

std::string_view DataKindToString(DataKind kind);

/// Streaming generator for one data-set partition.
class DataGenerator {
 public:
  /// `count` unique values first_value, first_value+1, ... (a partition of
  /// the paper's "unique" population: partition i of size m starts at
  /// i*m + 1).
  static DataGenerator Unique(uint64_t count, Value first_value = 1);

  /// `count` values uniform on [1, range] (paper default range 10^6).
  static DataGenerator Uniform(uint64_t count, uint64_t range, uint64_t seed);

  /// `count` Zipf(s) values on [1, range] (paper default range 4000).
  static DataGenerator Zipf(uint64_t count, uint64_t range, double s,
                            uint64_t seed);

  /// Convenience dispatcher used by the benchmark harnesses.
  static DataGenerator Make(DataKind kind, uint64_t count,
                            uint64_t partition_index, uint64_t seed);

  uint64_t count() const { return count_; }
  bool HasNext() const { return produced_ < count_; }

  /// Next value; must not be called when !HasNext().
  Value Next();

  /// Drains up to `n` values into a vector.
  std::vector<Value> Take(uint64_t n);

  /// Drains all remaining values.
  std::vector<Value> TakeAll() { return Take(count_ - produced_); }

 private:
  DataGenerator(DataKind kind, uint64_t count, Value first_value,
                uint64_t range, double s, uint64_t seed);

  DataKind kind_;
  uint64_t count_;
  uint64_t produced_ = 0;
  Value next_unique_;
  uint64_t range_;
  Pcg64 rng_;
  std::shared_ptr<const ZipfGenerator> zipf_;  // shared: the CDF table is
                                               // immutable and reusable
};

/// The paper's default ranges.
inline constexpr uint64_t kPaperUniformRange = 1000000;
inline constexpr uint64_t kPaperZipfRange = 4000;
inline constexpr double kPaperZipfExponent = 1.0;

}  // namespace sampwh

#endif  // SAMPWH_WORKLOAD_GENERATORS_H_
