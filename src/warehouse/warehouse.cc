#include "src/warehouse/warehouse.h"

#include <algorithm>
#include <utility>

#include "src/util/deadline.h"
#include "src/util/logging.h"

namespace sampwh {

namespace {

WarehouseOptions NormalizeOptions(WarehouseOptions options) {
  // The merge layer inherits the sampler's bound and exceedance target
  // unless the caller set them explicitly.
  if (options.merge.footprint_bound_bytes == 0) {
    options.merge.footprint_bound_bytes =
        options.sampler.footprint_bound_bytes;
  }
  return options;
}

}  // namespace

Warehouse::Warehouse(const WarehouseOptions& options,
                     std::unique_ptr<SampleStore> store)
    : options_(NormalizeOptions(options)),
      store_(std::move(store)),
      rng_(options_.seed) {
  SAMPWH_CHECK(store_ != nullptr);
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.sample_cache_bytes > 0) {
    sample_cache_ = std::make_unique<SampleCache>(
        options_.cache_shards, options_.sample_cache_bytes);
  }
  if (options_.merge_memo_bytes > 0) {
    merge_memo_ = std::make_unique<MergeMemo>(options_.cache_shards,
                                              options_.merge_memo_bytes);
  }
}

Warehouse::Warehouse(const WarehouseOptions& options)
    : Warehouse(options, std::make_unique<InMemorySampleStore>()) {}

Result<Warehouse::DatasetLock> Warehouse::LockDataset(
    const DatasetId& dataset) const {
  DatasetLock held;
  held.structure = std::shared_lock<std::shared_mutex>(mu_);
  const auto it = dataset_mu_.find(dataset);
  if (it == dataset_mu_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  held.dataset = std::unique_lock<std::mutex>(*it->second);
  return held;
}

Status Warehouse::CreateDataset(const DatasetId& id) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    SAMPWH_RETURN_IF_ERROR(catalog_.CreateDataset(id));
    dataset_mu_[id] = std::make_shared<std::mutex>();
  }
  AutoPersistManifest();
  return Status::OK();
}

Status Warehouse::CreateDataset(const DatasetId& id,
                                const SamplerConfig& config) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    SAMPWH_RETURN_IF_ERROR(catalog_.CreateDataset(id));
    dataset_mu_[id] = std::make_shared<std::mutex>();
    sampler_overrides_[id] = config;
  }
  AutoPersistManifest();
  return Status::OK();
}

SamplerConfig Warehouse::SamplerConfigFor(const DatasetId& dataset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = sampler_overrides_.find(dataset);
  return it != sampler_overrides_.end() ? it->second : options_.sampler;
}

Status Warehouse::DropDataset(const DatasetId& id) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                            catalog_.ListPartitions(id));
    for (const PartitionInfo& p : parts) {
      // Best effort: catalog consistency matters more than store misses.
      store_->Delete(PartitionKey{id, p.id});
    }
    // A dropped dataset's ingest checkpoints are meaningless (and would
    // read as stale on the next recovery); best effort again. Per-stripe
    // cursors live under "<dataset>#..." keys.
    store_->DeleteCheckpoint(id);
    if (Result<std::vector<DatasetId>> ckpts = store_->ListCheckpoints();
        ckpts.ok()) {
      for (const DatasetId& key : ckpts.value()) {
        if (key.size() > id.size() && key[id.size()] == '#' &&
            key.compare(0, id.size(), id) == 0) {
          store_->DeleteCheckpoint(key);
        }
      }
    }
    sampler_overrides_.erase(id);
    dataset_mu_.erase(id);
    // Epoch-bump both caches: a recreated dataset reuses partition ids from
    // 0, so pre-drop entries must become unreachable, not merely evicted.
    if (sample_cache_ != nullptr) sample_cache_->InvalidateDataset(id);
    if (merge_memo_ != nullptr) merge_memo_->InvalidateDataset(id);
    SAMPWH_RETURN_IF_ERROR(catalog_.DropDataset(id));
  }
  AutoPersistManifest();
  return Status::OK();
}

bool Warehouse::HasDataset(const DatasetId& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return catalog_.HasDataset(id);
}

std::vector<DatasetId> Warehouse::ListDatasets() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return catalog_.ListDatasets();
}

Result<DatasetInfo> Warehouse::GetDatasetInfo(const DatasetId& id) const {
  SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(id));
  return catalog_.GetDatasetInfo(id);
}

Result<std::vector<PartitionInfo>> Warehouse::ListPartitions(
    const DatasetId& dataset) const {
  SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
  return catalog_.ListPartitions(dataset);
}

Result<std::vector<PartitionId>> Warehouse::PartitionsInTimeRange(
    const DatasetId& dataset, uint64_t from, uint64_t to) const {
  SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
  return catalog_.PartitionsInTimeRange(dataset, from, to);
}

Result<PartitionId> Warehouse::RollIn(const DatasetId& dataset,
                                      const PartitionSample& sample,
                                      uint64_t min_timestamp,
                                      uint64_t max_timestamp) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  PartitionId id;
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    SAMPWH_ASSIGN_OR_RETURN(id, catalog_.AllocatePartitionId(dataset));
    SAMPWH_RETURN_IF_ERROR(store_->Put(PartitionKey{dataset, id}, sample));
    PartitionInfo info;
    info.id = id;
    info.parent_size = sample.parent_size();
    info.sample_size = sample.size();
    info.phase = sample.phase();
    info.min_timestamp = min_timestamp;
    info.max_timestamp = max_timestamp;
    const Status status = catalog_.AddPartition(dataset, info);
    if (!status.ok()) {
      store_->Delete(PartitionKey{dataset, id});
      return status;
    }
    if (sample_cache_ != nullptr) {
      // Write-through: a freshly rolled-in partition is the one queries are
      // about to merge, so cache its deserialized form immediately.
      sample_cache_->Insert(dataset, sample_cache_->CurrentEpoch(dataset), id,
                            std::make_shared<const PartitionSample>(sample));
    }
  }
  // Outside mu_ (SaveManifest takes it exclusively). Persisting the id
  // allocation durably is what lets a resumed ingestor prove whether an
  // interrupted roll-in completed.
  AutoPersistManifest();
  return id;
}

Result<PartitionId> Warehouse::RollInAt(const DatasetId& dataset,
                                        PartitionId id,
                                        const PartitionSample& sample,
                                        uint64_t min_timestamp,
                                        uint64_t max_timestamp) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    PartitionInfo info;
    info.id = id;
    info.parent_size = sample.parent_size();
    info.sample_size = sample.size();
    info.phase = sample.phase();
    info.min_timestamp = min_timestamp;
    info.max_timestamp = max_timestamp;
    // Register first: AddPartition rejects an occupied id before the store
    // is touched, so a collision never clobbers an existing sample. It also
    // keeps the allocator ahead of the explicit id, so locally allocated
    // roll-ins never collide with coordinator-placed ones.
    SAMPWH_RETURN_IF_ERROR(catalog_.AddPartition(dataset, info));
    const Status put = store_->Put(PartitionKey{dataset, id}, sample);
    if (!put.ok()) {
      catalog_.RemovePartition(dataset, id);
      return put;
    }
    if (sample_cache_ != nullptr) {
      sample_cache_->Insert(dataset, sample_cache_->CurrentEpoch(dataset), id,
                            std::make_shared<const PartitionSample>(sample));
    }
  }
  AutoPersistManifest();
  return id;
}

Status Warehouse::RollOut(const DatasetId& dataset, PartitionId partition) {
  Status delete_status;
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    SAMPWH_RETURN_IF_ERROR(catalog_.RemovePartition(dataset, partition));
    // Strict invalidation: the partition's cached sample and every memoized
    // merge node containing it go with the catalog entry, so no future read
    // can observe rolled-out state.
    if (sample_cache_ != nullptr) {
      sample_cache_->Invalidate(dataset, partition);
    }
    if (merge_memo_ != nullptr) {
      merge_memo_->InvalidatePartition(dataset, partition);
    }
    delete_status = store_->Delete(PartitionKey{dataset, partition});
  }
  AutoPersistManifest();
  return delete_status;
}

Result<std::vector<PartitionId>> Warehouse::ApplyRetention(
    const DatasetId& dataset, const RetentionPolicy& policy, uint64_t now) {
  std::vector<PartitionId> expired;
  {
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                            ListPartitions(dataset));
    expired = RetentionCandidates(parts, policy, now);
  }
  for (const PartitionId id : expired) {
    SAMPWH_RETURN_IF_ERROR(RollOut(dataset, id));
  }
  return expired;
}

Result<PartitionId> Warehouse::CompactPartitions(
    const DatasetId& dataset, const std::vector<PartitionId>& parts) {
  if (parts.size() < 2) {
    return Status::InvalidArgument("compaction needs at least 2 partitions");
  }
  // Combined event-time range of the inputs.
  uint64_t min_ts = UINT64_MAX;
  uint64_t max_ts = 0;
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    for (const PartitionId id : parts) {
      SAMPWH_ASSIGN_OR_RETURN(PartitionInfo info,
                              catalog_.GetPartition(dataset, id));
      min_ts = std::min(min_ts, info.min_timestamp);
      max_ts = std::max(max_ts, info.max_timestamp);
    }
  }
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample merged, MergeByIds(dataset, parts));
  // Roll the inputs out only after the merge succeeded; then roll the
  // consolidated sample in.
  for (const PartitionId id : parts) {
    SAMPWH_RETURN_IF_ERROR(RollOut(dataset, id));
  }
  return RollIn(dataset, merged, min_ts, max_ts);
}

Result<PartitionSample> Warehouse::GetSample(const DatasetId& dataset,
                                             PartitionId partition) const {
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    SAMPWH_RETURN_IF_ERROR(
        catalog_.GetPartition(dataset, partition).status());
  }
  if (sample_cache_ == nullptr) {
    return store_->Get(PartitionKey{dataset, partition});
  }
  // Resolve the epoch before the store fetch: an insertion racing a
  // dataset drop then lands under the stale epoch and is unreachable.
  const uint64_t epoch = sample_cache_->CurrentEpoch(dataset);
  if (auto cached = sample_cache_->Lookup(dataset, epoch, partition)) {
    return *cached;
  }
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample sample,
                          store_->Get(PartitionKey{dataset, partition}));
  auto shared = std::make_shared<const PartitionSample>(std::move(sample));
  sample_cache_->Insert(dataset, epoch, partition, shared);
  return *shared;
}

Result<uint64_t> Warehouse::PartitionContentDigest(
    const DatasetId& dataset, PartitionId partition) const {
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    SAMPWH_RETURN_IF_ERROR(catalog_.GetPartition(dataset, partition).status());
  }
  return store_->ContentDigest(PartitionKey{dataset, partition});
}

Result<std::vector<PartitionId>> Warehouse::IngestBatch(
    const DatasetId& dataset, const std::vector<Value>& values,
    size_t num_partitions, ThreadPool* pool) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("need at least one partition");
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!catalog_.HasDataset(dataset)) {
      return Status::NotFound("no dataset: " + dataset);
    }
  }
  if (pool == nullptr) pool = pool_.get();
  num_partitions = std::min<size_t>(
      num_partitions, std::max<size_t>(values.size(), size_t{1}));

  // Pre-fork one RNG stream per partition so results do not depend on
  // scheduling.
  std::vector<Pcg64> rngs;
  rngs.reserve(num_partitions);
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    for (size_t i = 0; i < num_partitions; ++i) {
      rngs.push_back(rng_.Fork(i));
    }
  }

  std::vector<PartitionSample> samples(num_partitions);
  const size_t chunk = values.size() / num_partitions;
  const size_t remainder = values.size() % num_partitions;
  const SamplerConfig dataset_config = SamplerConfigFor(dataset);
  auto run_one = [&](size_t p, size_t begin, size_t end) {
    SamplerConfig config = dataset_config;
    if (config.kind == SamplerKind::kHybridBernoulli &&
        config.expected_partition_size == 0) {
      // Batch loads know the partition size a priori — exactly the setting
      // Algorithm HB is designed for.
      config.expected_partition_size = end - begin;
    }
    AnySampler sampler(config, std::move(rngs[p]));
    sampler.AddBatch(
        std::span<const Value>(values.data() + begin, end - begin));
    samples[p] = sampler.Finalize();
  };

  size_t begin = 0;
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t p = 0; p < num_partitions; ++p) {
    const size_t size = chunk + (p < remainder ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  SAMPWH_CHECK(begin == values.size());

  if (pool != nullptr) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      tasks.push_back(
          [&, p] { run_one(p, ranges[p].first, ranges[p].second); });
    }
    pool->SubmitBatch(std::move(tasks));
    pool->Wait();
  } else {
    for (size_t p = 0; p < num_partitions; ++p) {
      run_one(p, ranges[p].first, ranges[p].second);
    }
  }

  std::vector<PartitionId> ids;
  ids.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    SAMPWH_ASSIGN_OR_RETURN(PartitionId id, RollIn(dataset, samples[p]));
    ids.push_back(id);
  }
  return ids;
}

Result<std::vector<std::shared_ptr<const PartitionSample>>>
Warehouse::FetchSamples(const DatasetId& dataset,
                        std::span<const PartitionId> ids) {
  // Serving-path deadline probe before the (possibly disk-bound) leaf
  // fetch; see the matching probe in MergeMemoized.
  SAMPWH_RETURN_IF_ERROR(CheckThreadDeadline());
  std::vector<std::shared_ptr<const PartitionSample>> samples(ids.size());
  if (sample_cache_ == nullptr) {
    std::vector<PartitionKey> keys;
    keys.reserve(ids.size());
    for (const PartitionId id : ids) {
      keys.push_back(PartitionKey{dataset, id});
    }
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionSample> fetched,
                            store_->GetMany(keys, pool_.get()));
    for (size_t i = 0; i < fetched.size(); ++i) {
      samples[i] =
          std::make_shared<const PartitionSample>(std::move(fetched[i]));
    }
    return samples;
  }
  // Resolve the epoch before any store fetch so that samples inserted after
  // a racing dataset drop land under the stale epoch and stay unreachable.
  const uint64_t epoch = sample_cache_->CurrentEpoch(dataset);
  std::vector<PartitionKey> missing;
  std::vector<size_t> missing_pos;
  for (size_t i = 0; i < ids.size(); ++i) {
    samples[i] = sample_cache_->Lookup(dataset, epoch, ids[i]);
    if (samples[i] == nullptr) {
      missing.push_back(PartitionKey{dataset, ids[i]});
      missing_pos.push_back(i);
    }
  }
  if (!missing.empty()) {
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionSample> fetched,
                            store_->GetMany(missing, pool_.get()));
    for (size_t m = 0; m < fetched.size(); ++m) {
      auto shared =
          std::make_shared<const PartitionSample>(std::move(fetched[m]));
      sample_cache_->Insert(dataset, epoch, missing[m].partition, shared);
      samples[missing_pos[m]] = std::move(shared);
    }
  }
  return samples;
}

Result<PartitionSample> Warehouse::MergeMemoized(
    const DatasetId& dataset, std::span<const PartitionId> ids,
    std::span<const std::shared_ptr<const PartitionSample>> leaves,
    const MergeOptions& merge_options, uint64_t options_fingerprint,
    uint64_t memo_epoch) {
  if (ids.size() == 1) return *leaves[0];
  // Cooperative cancellation for the serving path: a request whose
  // propagated deadline passed aborts here, between nodes. The check reads
  // a thread-local and consumes no randomness, so a merge that is NOT
  // canceled is bit-identical with or without a deadline installed.
  SAMPWH_RETURN_IF_ERROR(CheckThreadDeadline());
  if (auto cached =
          merge_memo_->Lookup(dataset, ids, options_fingerprint, memo_epoch)) {
    return *cached;
  }
  const size_t half = ids.size() / 2;
  SAMPWH_ASSIGN_OR_RETURN(
      PartitionSample left,
      MergeMemoized(dataset, ids.subspan(0, half), leaves.subspan(0, half),
                    merge_options, options_fingerprint, memo_epoch));
  SAMPWH_ASSIGN_OR_RETURN(
      PartitionSample right,
      MergeMemoized(dataset, ids.subspan(half), leaves.subspan(half),
                    merge_options, options_fingerprint, memo_epoch));
  // The node's randomness is a pure function of its identity — never of
  // query history — so a recomputation after eviction reproduces the node
  // bit-identically (and a shard or coordinator computing the same node
  // remotely reproduces it too; see MergeMemo::NodeRng).
  Pcg64 rng = MergeMemo::NodeRng(options_.seed, dataset, ids,
                                 options_fingerprint);
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample merged,
                          MergeSamples(left, right, merge_options, rng));
  merge_memo_->Insert(dataset, ids, options_fingerprint, memo_epoch, merged);
  return merged;
}

Result<PartitionSample> Warehouse::MergeByIds(
    const DatasetId& dataset, const std::vector<PartitionId>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("no partitions to merge");
  }
  MergeOptions merge_options = options_.merge;
  if (options_.cache_alias_tables) {
    merge_options.alias_cache = &alias_cache_;
  }

  const bool memoize =
      merge_memo_ != nullptr && !merge_options.disable_memoization;
  if (memoize) {
    // Canonical node identity: the sorted partition-id set. Queries naming
    // the same set in any order share memoized subtrees.
    std::vector<PartitionId> sorted(parts);
    std::sort(sorted.begin(), sorted.end());
    const uint64_t fingerprint = MergeOptionsFingerprint(merge_options);
    const uint64_t memo_epoch = merge_memo_->CurrentEpoch(dataset);
    if (sorted.size() > 1) {
      // Root shortcut: a fully memoized query skips the leaf fetch too.
      if (auto cached =
              merge_memo_->Lookup(dataset, sorted, fingerprint, memo_epoch)) {
        return *cached;
      }
    }
    SAMPWH_ASSIGN_OR_RETURN(
        std::vector<std::shared_ptr<const PartitionSample>> leaves,
        FetchSamples(dataset, sorted));
    return MergeMemoized(dataset, sorted, leaves, merge_options, fingerprint,
                         memo_epoch);
  }

  SAMPWH_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const PartitionSample>> samples,
      FetchSamples(dataset, parts));
  std::vector<const PartitionSample*> pointers;
  pointers.reserve(samples.size());
  for (const auto& s : samples) pointers.push_back(s.get());

  // Merge on a private RNG stream so long merges never hold a warehouse
  // lock; the alias cache is internally synchronized.
  Pcg64 merge_rng(options_.seed);
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    merge_rng = rng_.Fork(0x4D52);
  }
  if (options_.merge_strategy == MergeStrategy::kParallelTree) {
    return MergeAllParallel(pointers, merge_options, merge_rng, pool_.get());
  }
  return MergeAll(pointers, merge_options, merge_rng,
                  options_.merge_strategy);
}

Result<PartitionSample> Warehouse::MergedSample(
    const DatasetId& dataset, const std::vector<PartitionId>& parts) {
  {
    SAMPWH_ASSIGN_OR_RETURN(DatasetLock held, LockDataset(dataset));
    for (const PartitionId id : parts) {
      SAMPWH_RETURN_IF_ERROR(catalog_.GetPartition(dataset, id).status());
    }
  }
  return MergeByIds(dataset, parts);
}

Result<PartitionSample> Warehouse::MergedSampleAll(const DatasetId& dataset) {
  std::vector<PartitionId> ids;
  {
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> infos,
                            ListPartitions(dataset));
    ids.reserve(infos.size());
    for (const PartitionInfo& p : infos) ids.push_back(p.id);
  }
  return MergeByIds(dataset, ids);
}

Result<PartitionSample> Warehouse::MergedSampleInTimeRange(
    const DatasetId& dataset, uint64_t from, uint64_t to) {
  SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionId> ids,
                          PartitionsInTimeRange(dataset, from, to));
  return MergeByIds(dataset, ids);
}

Pcg64 Warehouse::ForkRng() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return rng_.Fork(0xF02C);
}

Status Warehouse::PutIngestCheckpoint(const DatasetId& dataset,
                                      std::string_view payload) {
  return PutIngestCheckpointKeyed(dataset, dataset, payload);
}

Status Warehouse::PutIngestCheckpointKeyed(const DatasetId& dataset,
                                           const std::string& key,
                                           std::string_view payload) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!catalog_.HasDataset(dataset)) {
      return Status::NotFound("no dataset: " + dataset);
    }
  }
  return store_->PutCheckpoint(key, payload);
}

Status Warehouse::AppendIngestCheckpointDeltasKeyed(
    const DatasetId& dataset, const std::string& key,
    const std::vector<std::string>& records) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!catalog_.HasDataset(dataset)) {
      return Status::NotFound("no dataset: " + dataset);
    }
  }
  return store_->AppendCheckpointDeltas(key, records);
}

Result<std::string> Warehouse::GetIngestCheckpoint(
    const DatasetId& dataset) const {
  return store_->GetCheckpoint(dataset);
}

Result<CheckpointChain> Warehouse::GetIngestCheckpointChain(
    const std::string& key) const {
  return store_->GetCheckpointChain(key);
}

Status Warehouse::DeleteIngestCheckpoint(const DatasetId& dataset) {
  return store_->DeleteCheckpoint(dataset);
}

Result<std::vector<DatasetId>> Warehouse::ListIngestCheckpoints() const {
  return store_->ListCheckpoints();
}

void Warehouse::AutoPersistManifest() {
  if (options_.manifest_path.empty()) return;
  // Best effort by design: a lost manifest update only regresses the
  // catalog to an earlier consistent state. Recovery converges regardless —
  // a re-rolled-in partition reuses the id the restored allocator hands
  // out and overwrites the orphan sample with identical bytes.
  SaveManifest(options_.manifest_path);
}

WarehouseCacheStats Warehouse::GetCacheStats() const {
  WarehouseCacheStats stats;
  if (sample_cache_ != nullptr) stats.sample_cache = sample_cache_->Stats();
  if (merge_memo_ != nullptr) stats.merge_memo = merge_memo_->Stats();
  return stats;
}

void Warehouse::InvalidateCaches() {
  if (sample_cache_ != nullptr) sample_cache_->Clear();
  if (merge_memo_ != nullptr) merge_memo_->Clear();
}

Status Warehouse::SaveManifest(const std::string& path) const {
  BinaryWriter writer;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    catalog_.SerializeTo(&writer);
  }
  return WriteFileAtomic(path, writer.buffer());
}

Result<std::unique_ptr<Warehouse>> Warehouse::Restore(
    const WarehouseOptions& options, std::unique_ptr<SampleStore> store,
    const std::string& manifest_path) {
  std::string bytes;
  SAMPWH_RETURN_IF_ERROR(ReadFile(manifest_path, &bytes));
  BinaryReader reader(bytes);
  SAMPWH_ASSIGN_OR_RETURN(Catalog catalog, Catalog::DeserializeFrom(&reader));

  auto warehouse =
      std::make_unique<Warehouse>(options, std::move(store));
  // Cross-check every cataloged partition against its stored sample before
  // accepting the manifest.
  for (const DatasetId& dataset : catalog.ListDatasets()) {
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                            catalog.ListPartitions(dataset));
    for (const PartitionInfo& p : parts) {
      SAMPWH_ASSIGN_OR_RETURN(
          PartitionSample sample,
          warehouse->store_->Get(PartitionKey{dataset, p.id}));
      if (sample.parent_size() != p.parent_size ||
          sample.size() != p.sample_size || sample.phase() != p.phase) {
        return Status::Corruption(
            "manifest metadata disagrees with stored sample for dataset " +
            dataset);
      }
    }
  }
  warehouse->catalog_ = std::move(catalog);
  for (const DatasetId& dataset : warehouse->catalog_.ListDatasets()) {
    warehouse->dataset_mu_[dataset] = std::make_shared<std::mutex>();
  }
  return warehouse;
}

Result<Warehouse::RestoredWarehouse> Warehouse::RestoreWithRecovery(
    const WarehouseOptions& options, std::unique_ptr<SampleStore> store,
    const std::string& manifest_path) {
  std::string bytes;
  SAMPWH_RETURN_IF_ERROR(ReadFile(manifest_path, &bytes));
  BinaryReader reader(bytes);
  SAMPWH_ASSIGN_OR_RETURN(Catalog catalog, Catalog::DeserializeFrom(&reader));

  // The catalog is the source of truth for what SHOULD exist; hand that
  // expectation to the store's recovery scan so it can report the gap after
  // quarantining whatever a crash left unreadable.
  std::vector<PartitionKey> expected;
  for (const DatasetId& dataset : catalog.ListDatasets()) {
    SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                            catalog.ListPartitions(dataset));
    for (const PartitionInfo& p : parts) {
      expected.push_back(PartitionKey{dataset, p.id});
    }
  }
  RestoredWarehouse restored;
  SAMPWH_ASSIGN_OR_RETURN(restored.report, store->Recover(expected));

  // Ingest checkpoints for datasets the catalog no longer knows are stale —
  // nothing could ever resume them — so they are deleted, not resurrected.
  if (Result<std::vector<DatasetId>> ckpts = store->ListCheckpoints();
      ckpts.ok()) {
    for (const DatasetId& key : ckpts.value()) {
      // Per-stripe cursors are stored under "<dataset>#s<stripe>"; their
      // liveness is decided by the dataset they belong to.
      const DatasetId base = key.substr(0, key.find('#'));
      if (!catalog.HasDataset(base)) {
        store->DeleteCheckpoint(key);  // best effort
        restored.report.stale_checkpoints.push_back(key);
      }
    }
  }

  // Reconcile the catalog against the recovered store: drop what cannot be
  // served (missing or quarantined) or whose metadata disagrees with the
  // stored sample. Everything left is queryable.
  for (const PartitionKey& key : expected) {
    SAMPWH_ASSIGN_OR_RETURN(PartitionInfo info,
                            catalog.GetPartition(key.dataset, key.partition));
    Result<PartitionSample> sample = store->Get(key);
    bool keep = sample.ok();
    if (keep) {
      keep = sample.value().parent_size() == info.parent_size &&
             sample.value().size() == info.sample_size &&
             sample.value().phase() == info.phase;
      // Decodable but inconsistent with the manifest: remove the stored
      // bytes too, so catalog and store agree afterwards.
      if (!keep) store->Delete(key);  // best effort
    }
    if (!keep) {
      SAMPWH_RETURN_IF_ERROR(catalog.RemovePartition(key.dataset,
                                                     key.partition));
      restored.dropped_partitions.push_back(key);
    }
  }

  restored.warehouse = std::make_unique<Warehouse>(options, std::move(store));
  restored.warehouse->catalog_ = std::move(catalog);
  for (const DatasetId& dataset :
       restored.warehouse->catalog_.ListDatasets()) {
    restored.warehouse->dataset_mu_[dataset] = std::make_shared<std::mutex>();
  }
  return restored;
}

}  // namespace sampwh
