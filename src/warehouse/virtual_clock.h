// A manually advanced clock for temporal partitioning. Production streams
// would stamp elements with real event time; tests and simulations drive
// this clock so that "one partition per day" scenarios are deterministic.

#ifndef SAMPWH_WAREHOUSE_VIRTUAL_CLOCK_H_
#define SAMPWH_WAREHOUSE_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace sampwh {

class VirtualClock {
 public:
  explicit VirtualClock(uint64_t start = 0) : now_(start) {}

  uint64_t Now() const { return now_; }
  void AdvanceTo(uint64_t t) {
    if (t > now_) now_ = t;
  }
  void AdvanceBy(uint64_t delta) { now_ += delta; }

 private:
  uint64_t now_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_VIRTUAL_CLOCK_H_
