#include "src/warehouse/sample_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/util/serialization.h"

namespace sampwh {

namespace {

std::string SerializeSample(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

Result<PartitionSample> DeserializeSample(const std::string& bytes) {
  BinaryReader reader(bytes);
  return PartitionSample::DeserializeFrom(&reader);
}

}  // namespace

Status InMemorySampleStore::Put(const PartitionKey& key,
                                const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  samples_[key] = SerializeSample(sample);
  return Status::OK();
}

Result<PartitionSample> InMemorySampleStore::Get(
    const PartitionKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = samples_.find(key);
  if (it == samples_.end()) {
    return Status::NotFound("no sample for partition");
  }
  return DeserializeSample(it->second);
}

Status InMemorySampleStore::Delete(const PartitionKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.erase(key) == 0) {
    return Status::NotFound("no sample for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> InMemorySampleStore::List(
    const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> ids;
  for (auto it = samples_.lower_bound(PartitionKey{dataset, 0});
       it != samples_.end() && it->first.dataset == dataset; ++it) {
    ids.push_back(it->first.partition);
  }
  return ids;
}

uint64_t InMemorySampleStore::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, bytes] : samples_) total += bytes.size();
  return total;
}

FileSampleStore::FileSampleStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<std::unique_ptr<FileSampleStore>> FileSampleStore::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create sample directory " + directory +
                           ": " + ec.message());
  }
  return std::unique_ptr<FileSampleStore>(new FileSampleStore(directory));
}

std::string FileSampleStore::PathFor(const PartitionKey& key) const {
  return directory_ + "/" + key.dataset + "." +
         std::to_string(key.partition) + ".sample";
}

Status FileSampleStore::Put(const PartitionKey& key,
                            const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const std::string bytes = SerializeSample(sample);
  std::lock_guard<std::mutex> lock(mu_);
  return WriteFileAtomic(PathFor(key), bytes);
}

Result<PartitionSample> FileSampleStore::Get(const PartitionKey& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SAMPWH_RETURN_IF_ERROR(ReadFile(PathFor(key), &bytes));
  }
  return DeserializeSample(bytes);
}

Status FileSampleStore::Delete(const PartitionKey& key) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(key), ec) || ec) {
    return Status::NotFound("no sample file for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> FileSampleStore::List(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(dataset));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> ids;
  const std::string prefix = dataset + ".";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t id_begin = prefix.size();
    const size_t id_end = name.find(".sample", id_begin);
    if (id_end == std::string::npos ||
        name.size() != id_end + 7 /* strlen(".sample") */) {
      continue;
    }
    const std::string id_str = name.substr(id_begin, id_end - id_begin);
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::stoull(id_str));
  }
  if (ec) return Status::IOError("cannot list " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace sampwh
