#include "src/warehouse/sample_store.h"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <utility>

#include "src/util/serialization.h"

namespace sampwh {

namespace {

std::string SerializeSample(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

Result<PartitionSample> DeserializeSample(const std::string& bytes) {
  BinaryReader reader(bytes);
  return PartitionSample::DeserializeFrom(&reader);
}

bool IsSampleFileName(const std::string& name) {
  constexpr std::string_view kSuffix = ".sample";
  return name.size() > kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

}  // namespace

Result<std::vector<PartitionSample>> SampleStore::GetMany(
    const std::vector<PartitionKey>& keys, ThreadPool* pool) const {
  std::vector<PartitionSample> out(keys.size());
  if (pool == nullptr || keys.size() < 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      SAMPWH_ASSIGN_OR_RETURN(out[i], Get(keys[i]));
    }
    return out;
  }
  // One task per key with private completion tracking — never
  // ThreadPool::Wait, which would also wait on unrelated work sharing the
  // pool (and deadlock if called from a pool task).
  std::vector<Status> statuses(keys.size(), Status::OK());
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = keys.size();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tasks.push_back([&, i] {
      Result<PartitionSample> r = Get(keys[i]);
      if (r.ok()) {
        out[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  pool->SubmitBatch(std::move(tasks));
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  for (const Status& status : statuses) SAMPWH_RETURN_IF_ERROR(status);
  return out;
}

Status InMemorySampleStore::Put(const PartitionKey& key,
                                const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  std::string bytes = SerializeSample(sample);
  std::lock_guard<std::mutex> lock(mu_);
  samples_[key] = std::move(bytes);
  return Status::OK();
}

Result<PartitionSample> InMemorySampleStore::Get(
    const PartitionKey& key) const {
  // Copy the serialized form under the lock, deserialize outside it, so
  // concurrent GetMany fetches overlap the (dominant) decode work.
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = samples_.find(key);
    if (it == samples_.end()) {
      return Status::NotFound("no sample for partition");
    }
    bytes = it->second;
  }
  return DeserializeSample(bytes);
}

Status InMemorySampleStore::Delete(const PartitionKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.erase(key) == 0) {
    return Status::NotFound("no sample for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> InMemorySampleStore::List(
    const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> ids;
  for (auto it = samples_.lower_bound(PartitionKey{dataset, 0});
       it != samples_.end() && it->first.dataset == dataset; ++it) {
    ids.push_back(it->first.partition);
  }
  return ids;
}

uint64_t InMemorySampleStore::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, bytes] : samples_) total += bytes.size();
  return total;
}

FileSampleStore::FileSampleStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<std::unique_ptr<FileSampleStore>> FileSampleStore::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create sample directory " + directory +
                           ": " + ec.message());
  }
  return std::unique_ptr<FileSampleStore>(new FileSampleStore(directory));
}

std::string FileSampleStore::PathFor(const PartitionKey& key) const {
  return directory_ + "/" + key.dataset + "." +
         std::to_string(key.partition) + ".sample";
}

size_t FileSampleStore::StripeIndexForTesting(const PartitionKey& key) {
  return PartitionKeyHash{}(key) % kLockStripes;
}

std::mutex& FileSampleStore::StripeFor(const PartitionKey& key) const {
  return stripes_[PartitionKeyHash{}(key) % kLockStripes];
}

void FileSampleStore::SetReadHookForTesting(
    std::function<void(const PartitionKey&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  read_hook_ = std::move(hook);
}

Status FileSampleStore::Put(const PartitionKey& key,
                            const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const std::string bytes = SerializeSample(sample);
  std::lock_guard<std::mutex> lock(StripeFor(key));
  return WriteFileAtomic(PathFor(key), bytes);
}

Result<PartitionSample> FileSampleStore::Get(const PartitionKey& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::function<void(const PartitionKey&)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = read_hook_;
  }
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(StripeFor(key));
    if (hook) hook(key);
    SAMPWH_RETURN_IF_ERROR(ReadFile(PathFor(key), &bytes));
  }
  return DeserializeSample(bytes);
}

Status FileSampleStore::Delete(const PartitionKey& key) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::lock_guard<std::mutex> lock(StripeFor(key));
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(key), ec) || ec) {
    return Status::NotFound("no sample file for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> FileSampleStore::List(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(dataset));
  // Lock-free: the directory scan relies on the filesystem's own atomicity
  // (atomic-replace Puts and unlink Deletes), so a List never blocks — or
  // is blocked by — reads and writes of individual samples.
  std::vector<PartitionId> ids;
  const std::string prefix = dataset + ".";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t id_begin = prefix.size();
    const size_t id_end = name.find(".sample", id_begin);
    if (id_end == std::string::npos ||
        name.size() != id_end + 7 /* strlen(".sample") */) {
      continue;
    }
    const std::string id_str = name.substr(id_begin, id_end - id_begin);
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::stoull(id_str));
  }
  if (ec) return Status::IOError("cannot list " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t FileSampleStore::TotalStoredBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!IsSampleFileName(name)) continue;
    const auto size = entry.file_size(ec);
    if (!ec) total += size;
  }
  return total;
}

}  // namespace sampwh
