#include "src/warehouse/sample_store.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "src/util/serialization.h"

namespace sampwh {

namespace {

std::string SerializeSample(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return WrapSampleEnvelope(writer.buffer());
}

// Decodes stored bytes: v2 envelope (verified) or bare v1 payload from a
// pre-envelope store. Every decode failure is normalized to Corruption so
// both backends surface one category for damaged payloads.
Result<PartitionSample> DeserializeSample(const std::string& bytes) {
  std::string_view payload(bytes);
  if (HasSampleEnvelope(bytes)) {
    SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(bytes, &payload));
  }
  BinaryReader reader(payload);
  Result<PartitionSample> decoded = PartitionSample::DeserializeFrom(&reader);
  if (!decoded.ok()) {
    return Status::Corruption("corrupt sample payload: " +
                              decoded.status().message());
  }
  return decoded;
}

// Full verification for recovery scans: envelope + decode + structural
// invariants.
Status VerifySampleBytes(const std::string& bytes) {
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample sample, DeserializeSample(bytes));
  return sample.Validate();
}

// Content digest of stored sample bytes: CRC32 of the serialized payload
// (envelope stripped, CRC verified) folded with the payload length. The
// same sample serializes to the same bytes on every node, so equal digests
// across replicas mean equal stored content.
Result<uint64_t> DigestStoredSample(const std::string& bytes) {
  std::string_view payload(bytes);
  if (HasSampleEnvelope(bytes)) {
    SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(bytes, &payload));
  } else {
    // Bare v1 payload carries no CRC of its own: prove it decodes before
    // trusting its bytes as content.
    SAMPWH_RETURN_IF_ERROR(DeserializeSample(bytes).status());
  }
  return (static_cast<uint64_t>(Crc32(payload)) << 32) |
         (static_cast<uint64_t>(payload.size()) & 0xffffffffull);
}

bool HasSuffix(const std::string& name, std::string_view suffix) {
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSampleFileName(const std::string& name) {
  return HasSuffix(name, ".sample");
}

// Parses "<dataset>.<generation>.ckpt". Dataset ids may themselves contain
// dots, so the generation is always the LAST dot-separated segment before
// the suffix; it must be purely numeric.
bool ParseCheckpointName(const std::string& name, DatasetId* dataset,
                         uint64_t* generation) {
  if (!HasSuffix(name, ".ckpt")) return false;
  const std::string stem = name.substr(0, name.size() - 5);
  const size_t last_dot = stem.rfind('.');
  if (last_dot == std::string::npos || last_dot == 0) return false;
  const std::string gen_str = stem.substr(last_dot + 1);
  if (gen_str.empty() ||
      gen_str.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *dataset = stem.substr(0, last_dot);
  *generation = std::stoull(gen_str);
  return true;
}

// Parses "<dataset>.<generation>.wal" — the delta journal owned by the
// snapshot generation of the same stem. Same last-numeric-segment rule as
// ParseCheckpointName.
bool ParseWalName(const std::string& name, DatasetId* dataset,
                  uint64_t* generation) {
  if (!HasSuffix(name, ".wal")) return false;
  const std::string stem = name.substr(0, name.size() - 4);
  const size_t last_dot = stem.rfind('.');
  if (last_dot == std::string::npos || last_dot == 0) return false;
  const std::string gen_str = stem.substr(last_dot + 1);
  if (gen_str.empty() ||
      gen_str.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *dataset = stem.substr(0, last_dot);
  *generation = std::stoull(gen_str);
  return true;
}

// Appends raw bytes to a file (created if absent). Deliberately NOT atomic:
// WAL appends rely on per-record CRC framing instead — a tear at the tail
// is detected and dropped on read.
Status AppendBytesToFile(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for append");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    return Status::IOError("short append to " + path);
  }
  return Status::OK();
}

// Builds one framed batch from delta record payloads.
std::string FrameWalBatch(const std::vector<std::string>& records) {
  std::string batch;
  for (const std::string& record : records) {
    AppendCheckpointWalFrame(&batch, record);
  }
  return batch;
}

// Length of the prefix of `wal` covering records that pass DEEP verification
// (frame + CRC + record decode + embedded checkpoint decode). Recovery
// truncates a WAL to this length.
size_t DeepVerifiedWalPrefix(std::string_view wal) {
  const CheckpointWalParse parse = ParseCheckpointWal(wal);
  size_t valid = 0;
  for (const std::string& record : parse.records) {
    if (!VerifyCheckpointDeltaPayload(record).ok()) break;
    valid += kCheckpointWalFrameBytes + record.size();
  }
  return valid;
}

// Full verification for recovery scans of checkpoint bytes: envelope +
// record decode + embedded sampler-state / pending-sample decode.
Status VerifyCheckpointBytes(const std::string& bytes) {
  std::string_view payload;
  SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(bytes, &payload));
  return VerifyCheckpointPayload(payload);
}

void SleepBackoff(std::chrono::microseconds backoff) {
  if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
}

}  // namespace

std::string QuarantineDestination(const std::string& path) {
  std::string dest = path + ".quarantine";
  std::error_code ec;
  for (uint64_t n = 1; std::filesystem::exists(dest, ec); ++n) {
    dest = path + ".quarantine." + std::to_string(n);
  }
  return dest;
}

void SampleStore::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(config_mu_);
  injector_ = std::move(injector);
}

void SampleStore::SetRetryPolicy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(config_mu_);
  retry_policy_ = policy;
  if (retry_policy_.max_attempts < 1) retry_policy_.max_attempts = 1;
}

SampleStore::RetryPolicy SampleStore::retry_policy() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return retry_policy_;
}

std::shared_ptr<FaultInjector> SampleStore::fault_injector() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return injector_;
}

StoreStats SampleStore::GetStoreStats() const {
  StoreStats stats;
  stats.retries_attempted = stats_retries_attempted_.load();
  stats.retries_exhausted = stats_retries_exhausted_.load();
  stats.quarantines = stats_quarantines_.load();
  stats.recovered_temps = stats_recovered_temps_.load();
  stats.checkpoints_written = stats_checkpoints_written_.load();
  stats.checkpoints_restored = stats_checkpoints_restored_.load();
  stats.wal_appends = stats_wal_appends_.load();
  stats.wal_records_appended = stats_wal_records_appended_.load();
  stats.wal_tails_truncated = stats_wal_tails_truncated_.load();
  return stats;
}

Result<RecoveryReport> SampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  for (const PartitionKey& key : expected) {
    if (!Get(key).ok()) report.missing_partitions.push_back(key);
  }
  return report;
}

Result<std::vector<PartitionSample>> SampleStore::GetMany(
    const std::vector<PartitionKey>& keys, ThreadPool* pool) const {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  auto fetch_one = [&](size_t i) -> Result<PartitionSample> {
    // Prefetch-task site: a fault here models a fetch task dying before it
    // reaches the store (scheduler/pool-level failure). The whole GetMany
    // must fail — never a partial vector.
    if (injector != nullptr &&
        injector->Next(kFaultSiteGetManyTask) == FaultKind::kIOError) {
      return Status::IOError("injected prefetch-task fault");
    }
    return Get(keys[i]);
  };

  std::vector<PartitionSample> out(keys.size());
  if (pool == nullptr || keys.size() < 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      SAMPWH_ASSIGN_OR_RETURN(out[i], fetch_one(i));
    }
    return out;
  }
  // One task per key with private completion tracking — never
  // ThreadPool::Wait, which would also wait on unrelated work sharing the
  // pool (and deadlock if called from a pool task).
  std::vector<Status> statuses(keys.size(), Status::OK());
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = keys.size();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tasks.push_back([&, i] {
      Result<PartitionSample> r = fetch_one(i);
      if (r.ok()) {
        out[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  pool->SubmitBatch(std::move(tasks));
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  for (const Status& status : statuses) SAMPWH_RETURN_IF_ERROR(status);
  return out;
}

Status InMemorySampleStore::Put(const PartitionKey& key,
                                const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  std::string bytes = SerializeSample(sample);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSitePutWrite)
                                : FaultKind::kNone;
    switch (fault) {
      case FaultKind::kTornWrite: {
        // The in-memory analogue of a tear: the stored blob is a prefix of
        // the enveloped bytes; the CRC layer catches it on read.
        const size_t keep = injector->TornPrefixLength(bytes.size());
        std::lock_guard<std::mutex> lock(mu_);
        samples_[key] = bytes.substr(0, keep);
        return Status::IOError("injected crash: torn write");
      }
      case FaultKind::kCrashBeforeRename:
        // Crash before publication: nothing was stored.
        return Status::IOError("injected crash before publish");
      case FaultKind::kIOError:
        if (attempt >= policy.max_attempts) {
          NoteRetryExhausted();
          return Status::IOError("injected transient write fault");
        }
        NoteRetryAttempted();
        SleepBackoff(backoff);
        backoff *= 2;
        continue;
      default: {
        std::lock_guard<std::mutex> lock(mu_);
        samples_[key] = std::move(bytes);
        return Status::OK();
      }
    }
  }
}

Result<PartitionSample> InMemorySampleStore::Get(
    const PartitionKey& key) const {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  // Copy the serialized form under the lock, deserialize outside it, so
  // concurrent GetMany fetches overlap the (dominant) decode work.
  std::string bytes;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSiteGetRead)
                                : FaultKind::kNone;
    if (fault == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        return Status::IOError("injected transient read fault");
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = samples_.find(key);
      if (it == samples_.end()) {
        return Status::NotFound("no sample for partition");
      }
      bytes = it->second;
    }
    if (fault == FaultKind::kCorruptRead && !bytes.empty()) {
      bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
    }
    break;
  }
  return DeserializeSample(bytes);
}

Result<uint64_t> InMemorySampleStore::ContentDigest(
    const PartitionKey& key) const {
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = samples_.find(key);
    if (it == samples_.end()) {
      return Status::NotFound("no sample for partition");
    }
    bytes = it->second;
  }
  return DigestStoredSample(bytes);
}

Status InMemorySampleStore::Delete(const PartitionKey& key) {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr &&
        injector->Next(kFaultSiteDelete) == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        return Status::IOError("injected transient delete fault");
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.erase(key) == 0) {
    return Status::NotFound("no sample for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> InMemorySampleStore::List(
    const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> ids;
  for (auto it = samples_.lower_bound(PartitionKey{dataset, 0});
       it != samples_.end() && it->first.dataset == dataset; ++it) {
    ids.push_back(it->first.partition);
  }
  return ids;
}

uint64_t InMemorySampleStore::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, bytes] : samples_) total += bytes.size();
  return total;
}

Result<RecoveryReport> InMemorySampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = samples_.begin(); it != samples_.end();) {
      ++report.scanned;
      if (!VerifySampleBytes(it->second).ok()) {
        report.quarantined.push_back(it->first.dataset + "." +
                                     std::to_string(it->first.partition));
        NoteQuarantine();
        it = samples_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [dataset, gens] : checkpoints_) {
      for (auto it = gens.begin(); it != gens.end();) {
        ++report.scanned;
        if (!VerifyCheckpointBytes(it->second).ok()) {
          report.quarantined_checkpoints.push_back(
              dataset + "." + std::to_string(it->first) + ".ckpt");
          NoteQuarantine();
          it = gens.erase(it);
        } else {
          ++it;
        }
      }
    }
    // WALs: a journal whose snapshot generation did not survive is an
    // orphan (its records resolve against nothing); surviving journals are
    // deep-verified and truncated at the first bad record.
    for (auto ws = wals_.begin(); ws != wals_.end();) {
      const auto cs = checkpoints_.find(ws->first);
      for (auto it = ws->second.begin(); it != ws->second.end();) {
        ++report.scanned;
        const std::string name =
            ws->first + "." + std::to_string(it->first) + ".wal";
        if (cs == checkpoints_.end() ||
            cs->second.find(it->first) == cs->second.end()) {
          report.orphaned_wals.push_back(name);
          NoteQuarantine();
          it = ws->second.erase(it);
          continue;
        }
        const size_t valid = DeepVerifiedWalPrefix(it->second);
        if (valid != it->second.size()) {
          it->second.resize(valid);
          report.truncated_wal_tails.push_back(name);
          NoteWalTailTruncated();
        }
        ++it;
      }
      ws = ws->second.empty() ? wals_.erase(ws) : std::next(ws);
    }
  }
  for (const PartitionKey& key : expected) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.find(key) == samples_.end()) {
      report.missing_partitions.push_back(key);
    }
  }
  return report;
}

Status InMemorySampleStore::PutCheckpoint(const DatasetId& dataset,
                                          std::string_view payload) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  std::string bytes = WrapSampleEnvelope(payload);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSiteCheckpointWrite)
                                : FaultKind::kNone;
    switch (fault) {
      case FaultKind::kTornWrite: {
        const size_t keep = injector->TornPrefixLength(bytes.size());
        std::lock_guard<std::mutex> lock(mu_);
        auto& gens = checkpoints_[dataset];
        const uint64_t gen = gens.empty() ? 1 : gens.rbegin()->first + 1;
        gens[gen] = bytes.substr(0, keep);
        return Status::IOError("injected crash: torn checkpoint write");
      }
      case FaultKind::kCrashBeforeRename:
        return Status::IOError("injected crash before checkpoint publish");
      case FaultKind::kIOError:
        if (attempt >= policy.max_attempts) {
          NoteRetryExhausted();
          return Status::IOError("injected transient checkpoint-write fault");
        }
        NoteRetryAttempted();
        SleepBackoff(backoff);
        backoff *= 2;
        continue;
      default: {
        std::lock_guard<std::mutex> lock(mu_);
        auto& gens = checkpoints_[dataset];
        const uint64_t gen = gens.empty() ? 1 : gens.rbegin()->first + 1;
        gens[gen] = std::move(bytes);
        // A fresh generation starts with an empty journal; journals of
        // pruned generations go with their snapshots.
        auto& wals = wals_[dataset];
        wals.erase(gen);
        while (gens.size() > 2) {
          wals.erase(gens.begin()->first);
          gens.erase(gens.begin());
        }
        NoteCheckpointWritten();
        return Status::OK();
      }
    }
  }
}

Result<std::string> InMemorySampleStore::GetCheckpoint(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr &&
        injector->Next(kFaultSiteCheckpointRead) == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        return Status::IOError("injected transient checkpoint-read fault");
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    break;
  }
  // Newest generation first; a corrupt one is dropped (the in-memory
  // quarantine) and the previous generation served instead.
  std::lock_guard<std::mutex> lock(mu_);
  const auto ds = checkpoints_.find(dataset);
  if (ds != checkpoints_.end()) {
    auto& gens = ds->second;
    while (!gens.empty()) {
      const auto newest = std::prev(gens.end());
      std::string_view payload;
      if (UnwrapSampleEnvelope(newest->second, &payload).ok()) {
        NoteCheckpointRestored();
        return std::string(payload);
      }
      NoteQuarantine();
      DropWalLocked(dataset, newest->first);
      gens.erase(newest);
    }
  }
  return Status::NotFound("no checkpoint for dataset");
}

void InMemorySampleStore::DropWalLocked(const DatasetId& dataset,
                                        uint64_t generation) const {
  const auto ws = wals_.find(dataset);
  if (ws == wals_.end()) return;
  ws->second.erase(generation);
  if (ws->second.empty()) wals_.erase(ws);
}

Status InMemorySampleStore::AppendCheckpointDeltas(
    const DatasetId& key, const std::vector<std::string>& records) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(key));
  if (records.empty()) return Status::OK();
  const std::string batch = FrameWalBatch(records);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const FaultKind fault = injector != nullptr
                              ? injector->Next(kFaultSiteWalAppend)
                              : FaultKind::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  const auto ds = checkpoints_.find(key);
  if (ds == checkpoints_.end() || ds->second.empty()) {
    return Status::FailedPrecondition(
        "no snapshot generation to append WAL records to");
  }
  const uint64_t gen = ds->second.rbegin()->first;
  switch (fault) {
    case FaultKind::kTornWrite: {
      // Torn group commit: a prefix of the batch reaches the journal. Not
      // retried — the per-record CRC framing drops the tail on read.
      const size_t keep = injector->TornPrefixLength(batch.size());
      wals_[key][gen] += batch.substr(0, keep);
      return Status::IOError("injected crash: torn WAL append");
    }
    case FaultKind::kIOError:
    case FaultKind::kCrashBeforeRename:
      return Status::IOError("injected WAL append fault");
    default:
      wals_[key][gen] += batch;
      NoteWalAppend(records.size());
      return Status::OK();
  }
}

Result<CheckpointChain> InMemorySampleStore::GetCheckpointChain(
    const DatasetId& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(key));
  std::lock_guard<std::mutex> lock(mu_);
  const auto ds = checkpoints_.find(key);
  if (ds != checkpoints_.end()) {
    auto& gens = ds->second;
    while (!gens.empty()) {
      const auto newest = std::prev(gens.end());
      std::string_view payload;
      if (UnwrapSampleEnvelope(newest->second, &payload).ok()) {
        CheckpointChain chain;
        chain.generation = newest->first;
        chain.snapshot = std::string(payload);
        const auto ws = wals_.find(key);
        if (ws != wals_.end()) {
          const auto wal = ws->second.find(newest->first);
          if (wal != ws->second.end()) {
            CheckpointWalParse parse = ParseCheckpointWal(wal->second);
            chain.deltas = std::move(parse.records);
            chain.torn_tail = parse.torn_tail;
          }
        }
        NoteCheckpointRestored();
        return chain;
      }
      NoteQuarantine();
      DropWalLocked(key, newest->first);
      gens.erase(newest);
    }
  }
  return Status::NotFound("no checkpoint for dataset");
}

Status InMemorySampleStore::DeleteCheckpoint(const DatasetId& dataset) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  std::lock_guard<std::mutex> lock(mu_);
  wals_.erase(dataset);
  if (checkpoints_.erase(dataset) == 0) {
    return Status::NotFound("no checkpoint for dataset");
  }
  return Status::OK();
}

Result<std::vector<DatasetId>> InMemorySampleStore::ListCheckpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetId> datasets;
  for (const auto& [dataset, gens] : checkpoints_) {
    if (!gens.empty()) datasets.push_back(dataset);
  }
  return datasets;
}

FileSampleStore::FileSampleStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<std::unique_ptr<FileSampleStore>> FileSampleStore::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create sample directory " + directory +
                           ": " + ec.message());
  }
  return std::unique_ptr<FileSampleStore>(new FileSampleStore(directory));
}

std::string FileSampleStore::PathFor(const PartitionKey& key) const {
  return directory_ + "/" + key.dataset + "." +
         std::to_string(key.partition) + ".sample";
}

std::string FileSampleStore::CheckpointPathFor(const DatasetId& dataset,
                                               uint64_t generation) const {
  return directory_ + "/" + dataset + "." + std::to_string(generation) +
         ".ckpt";
}

std::string FileSampleStore::WalPathFor(const DatasetId& dataset,
                                        uint64_t generation) const {
  return directory_ + "/" + dataset + "." + std::to_string(generation) +
         ".wal";
}

size_t FileSampleStore::StripeIndexForTesting(const PartitionKey& key) {
  return PartitionKeyHash{}(key) % kLockStripes;
}

std::mutex& FileSampleStore::StripeFor(const PartitionKey& key) const {
  return stripes_[PartitionKeyHash{}(key) % kLockStripes];
}

void FileSampleStore::SetReadHookForTesting(
    std::function<void(const PartitionKey&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  read_hook_ = std::move(hook);
}

Status FileSampleStore::WriteFileWithFaults(const std::string& site,
                                            const std::string& path,
                                            const std::string& bytes) {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr ? injector->Next(site)
                                                : FaultKind::kNone;
    Status status;
    switch (fault) {
      case FaultKind::kTornWrite: {
        // Simulated power loss after the rename: the destination holds a
        // prefix of the bytes. Not retried — the tear must stay for
        // Recover() to find.
        const size_t keep = injector->TornPrefixLength(bytes.size());
        WriteFileAtomic(path, std::string_view(bytes).substr(0, keep));
        return Status::IOError("injected crash: torn write of " + path);
      }
      case FaultKind::kCrashBeforeRename: {
        // Simulated crash between the temp write and its rename: the temp
        // file is orphaned, the destination untouched. Not retried.
        const std::string tmp = path + ".tmp";
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(bytes.data(), 1, bytes.size(), f);
          std::fclose(f);
        }
        return Status::IOError("injected crash before rename of " + path);
      }
      case FaultKind::kIOError:
        status = Status::IOError("injected transient write fault");
        break;
      default:
        status = WriteFileAtomic(path, bytes);
        break;
    }
    if (status.ok() || !status.IsIOError()) {
      return status;
    }
    if (attempt >= policy.max_attempts) {
      NoteRetryExhausted();
      return status;
    }
    NoteRetryAttempted();
    SleepBackoff(backoff);
    backoff *= 2;
  }
}

void FileSampleStore::QuarantineFile(const PartitionKey& key,
                                     const std::string& path) const {
  std::lock_guard<std::mutex> lock(StripeFor(key));
  std::error_code ec;
  std::filesystem::rename(path, QuarantineDestination(path), ec);
  // Best effort: if the rename races a concurrent replace or delete, the
  // corrupt bytes are already gone.
  if (!ec) NoteQuarantine();
}

void FileSampleStore::QuarantineCheckpointPath(const std::string& path) const {
  std::error_code ec;
  std::filesystem::rename(path, QuarantineDestination(path), ec);
  if (!ec) NoteQuarantine();
}

Status FileSampleStore::Put(const PartitionKey& key,
                            const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const std::string bytes = SerializeSample(sample);
  std::lock_guard<std::mutex> lock(StripeFor(key));
  return WriteFileWithFaults(kFaultSitePutWrite, PathFor(key), bytes);
}

Result<PartitionSample> FileSampleStore::Get(const PartitionKey& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::function<void(const PartitionKey&)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = read_hook_;
  }
  const std::string path = PathFor(key);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(StripeFor(key));
    if (hook) hook(key);
    std::chrono::microseconds backoff = policy.initial_backoff;
    for (int attempt = 1;; ++attempt) {
      const FaultKind fault = injector != nullptr
                                  ? injector->Next(kFaultSiteGetRead)
                                  : FaultKind::kNone;
      Status status = fault == FaultKind::kIOError
                          ? Status::IOError("injected transient read fault")
                          : ReadFile(path, &bytes);
      if (status.ok() && fault == FaultKind::kCorruptRead && !bytes.empty()) {
        bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
      }
      if (status.ok()) break;
      if (!status.IsIOError()) return status;
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        return status;
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
    }
  }
  Result<PartitionSample> decoded = DeserializeSample(bytes);
  if (!decoded.ok()) {
    // Detected tear/corruption: move the damaged file aside so it is never
    // re-served (and a fresh Put of the key starts clean), keep it on disk
    // for inspection.
    QuarantineFile(key, path);
    return decoded.status();
  }
  return decoded;
}

Result<uint64_t> FileSampleStore::ContentDigest(const PartitionKey& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  const std::string path = PathFor(key);
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(StripeFor(key));
    SAMPWH_RETURN_IF_ERROR(ReadFile(path, &bytes));
  }
  Result<uint64_t> digest = DigestStoredSample(bytes);
  if (!digest.ok() && digest.status().IsCorruption()) {
    // Same policy as Get: damaged bytes are preserved aside, never
    // re-served, and the key reads as missing so repair can re-replicate.
    QuarantineFile(key, path);
  }
  return digest;
}

Status FileSampleStore::Delete(const PartitionKey& key) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  std::lock_guard<std::mutex> lock(StripeFor(key));
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr &&
        injector->Next(kFaultSiteDelete) == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        return Status::IOError("injected transient delete fault");
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    break;
  }
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(key), ec) || ec) {
    return Status::NotFound("no sample file for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> FileSampleStore::List(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(dataset));
  // Lock-free: the directory scan relies on the filesystem's own atomicity
  // (atomic-replace Puts and unlink Deletes), so a List never blocks — or
  // is blocked by — reads and writes of individual samples.
  std::vector<PartitionId> ids;
  const std::string prefix = dataset + ".";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t id_begin = prefix.size();
    const size_t id_end = name.find(".sample", id_begin);
    if (id_end == std::string::npos ||
        name.size() != id_end + 7 /* strlen(".sample") */) {
      continue;
    }
    const std::string id_str = name.substr(id_begin, id_end - id_begin);
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::stoull(id_str));
  }
  if (ec) return Status::IOError("cannot list " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t FileSampleStore::TotalStoredBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!IsSampleFileName(name)) continue;
    const auto size = entry.file_size(ec);
    if (!ec) total += size;
  }
  return total;
}

Result<RecoveryReport> FileSampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  std::vector<std::filesystem::path> temps;
  std::vector<std::filesystem::path> samples;
  std::vector<std::filesystem::path> checkpoints;
  std::vector<std::filesystem::path> wals;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    DatasetId ckpt_dataset;
    uint64_t ckpt_gen;
    if (HasSuffix(name, ".tmp")) {
      temps.push_back(entry.path());
    } else if (IsSampleFileName(name)) {
      samples.push_back(entry.path());
    } else if (ParseCheckpointName(name, &ckpt_dataset, &ckpt_gen)) {
      checkpoints.push_back(entry.path());
    } else if (ParseWalName(name, &ckpt_dataset, &ckpt_gen)) {
      wals.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::IOError("cannot scan " + directory_ + ": " + ec.message());
  }
  // Orphan temps are leftovers of writes that crashed before their rename;
  // the destination (if any) is still the last fully published version.
  for (const auto& tmp : temps) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    if (!remove_ec) {
      report.removed_temps.push_back(tmp.filename().string());
      NoteRecoveredTemp();
    }
  }
  for (const auto& path : samples) {
    ++report.scanned;
    std::string bytes;
    Status status = ReadFile(path.string(), &bytes);
    if (status.ok()) status = VerifySampleBytes(bytes);
    if (!status.ok()) {
      std::error_code rename_ec;
      std::filesystem::rename(path, QuarantineDestination(path.string()),
                              rename_ec);
      report.quarantined.push_back(path.filename().string());
      if (!rename_ec) NoteQuarantine();
    }
  }
  // Checkpoints get the FULL structural check (record + embedded sampler
  // state + pending sample): resume must never begin decoding a checkpoint
  // that cannot be loaded end to end. Surviving stems anchor the WAL pass
  // below.
  std::set<std::string> live_ckpt_stems;
  for (const auto& path : checkpoints) {
    ++report.scanned;
    const std::string name = path.filename().string();
    std::string bytes;
    Status status = ReadFile(path.string(), &bytes);
    if (status.ok()) status = VerifyCheckpointBytes(bytes);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(ckpt_mu_);
      QuarantineCheckpointPath(path.string());
      newest_generation_.clear();
      report.quarantined_checkpoints.push_back(name);
    } else {
      live_ckpt_stems.insert(name.substr(0, name.size() - 5 /* ".ckpt" */));
    }
  }
  // WALs: a journal whose snapshot did not survive is an orphan (its
  // records resolve against nothing) and is quarantined whole; surviving
  // journals are deep-verified record by record and truncated at the first
  // record that fails — a torn group commit never hides behind the tear.
  for (const auto& path : wals) {
    ++report.scanned;
    const std::string name = path.filename().string();
    const std::string stem = name.substr(0, name.size() - 4 /* ".wal" */);
    std::string bytes;
    const bool readable = ReadFile(path.string(), &bytes).ok();
    if (live_ckpt_stems.find(stem) == live_ckpt_stems.end() || !readable) {
      std::lock_guard<std::mutex> lock(ckpt_mu_);
      QuarantineCheckpointPath(path.string());
      report.orphaned_wals.push_back(name);
      continue;
    }
    const size_t valid = DeepVerifiedWalPrefix(bytes);
    if (valid != bytes.size()) {
      std::lock_guard<std::mutex> lock(ckpt_mu_);
      WriteFileAtomic(path.string(), std::string_view(bytes).substr(0, valid));
      report.truncated_wal_tails.push_back(name);
      NoteWalTailTruncated();
    }
  }
  for (const PartitionKey& key : expected) {
    std::error_code exists_ec;
    if (!std::filesystem::exists(PathFor(key), exists_ec)) {
      report.missing_partitions.push_back(key);
    }
  }
  return report;
}

std::vector<uint64_t> FileSampleStore::CheckpointGenerations(
    const DatasetId& dataset) const {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    DatasetId parsed;
    uint64_t gen;
    if (ParseCheckpointName(entry.path().filename().string(), &parsed, &gen) &&
        parsed == dataset) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Status FileSampleStore::PutCheckpoint(const DatasetId& dataset,
                                      std::string_view payload) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  const std::string bytes = WrapSampleEnvelope(payload);
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  const std::vector<uint64_t> gens = CheckpointGenerations(dataset);
  const uint64_t next_gen = gens.empty() ? 1 : gens.back() + 1;
  Status write = WriteFileWithFaults(
      kFaultSiteCheckpointWrite, CheckpointPathFor(dataset, next_gen), bytes);
  if (!write.ok()) {
    // A torn write may have published a damaged newest generation; never
    // let a cached entry route WAL appends at it.
    newest_generation_.erase(dataset);
    return write;
  }
  // The new generation starts with an empty journal: drop stale bytes a
  // quarantined ancestor of the same number may have left behind.
  std::error_code wal_ec;
  std::filesystem::remove(WalPathFor(dataset, next_gen), wal_ec);
  // Keep the newest two generations: the one just written plus one
  // fallback in case the next write tears. Pruned snapshots take their
  // journals with them.
  for (size_t i = 0; i + 1 < gens.size(); ++i) {
    std::error_code remove_ec;
    std::filesystem::remove(CheckpointPathFor(dataset, gens[i]), remove_ec);
    std::filesystem::remove(WalPathFor(dataset, gens[i]), remove_ec);
  }
  newest_generation_[dataset] = next_gen;
  NoteCheckpointWritten();
  return Status::OK();
}

Result<std::string> FileSampleStore::GetCheckpoint(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  std::vector<uint64_t> gens = CheckpointGenerations(dataset);
  // Newest generation first; a generation that fails envelope verification
  // is quarantined and the previous one tried.
  while (!gens.empty()) {
    const uint64_t gen = gens.back();
    const std::string path = CheckpointPathFor(dataset, gen);
    gens.pop_back();
    std::string bytes;
    std::chrono::microseconds backoff = policy.initial_backoff;
    Status status;
    for (int attempt = 1;; ++attempt) {
      const FaultKind fault = injector != nullptr
                                  ? injector->Next(kFaultSiteCheckpointRead)
                                  : FaultKind::kNone;
      status = fault == FaultKind::kIOError
                   ? Status::IOError("injected transient checkpoint read")
                   : ReadFile(path, &bytes);
      if (status.ok() && fault == FaultKind::kCorruptRead && !bytes.empty()) {
        bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
      }
      if (status.ok() || !status.IsIOError()) break;
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        break;
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
    }
    if (status.IsIOError()) return status;
    if (!status.ok()) continue;  // vanished between list and read
    std::string_view payload;
    if (UnwrapSampleEnvelope(bytes, &payload).ok()) {
      NoteCheckpointRestored();
      return std::string(payload);
    }
    QuarantineCheckpointPath(path);
    QuarantineCheckpointPath(WalPathFor(dataset, gen));
    newest_generation_.erase(dataset);
  }
  return Status::NotFound("no checkpoint for dataset");
}

Status FileSampleStore::AppendCheckpointDeltas(
    const DatasetId& key, const std::vector<std::string>& records) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(key));
  if (records.empty()) return Status::OK();
  const std::string batch = FrameWalBatch(records);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  uint64_t gen;
  const auto cached = newest_generation_.find(key);
  if (cached != newest_generation_.end()) {
    gen = cached->second;
  } else {
    const std::vector<uint64_t> gens = CheckpointGenerations(key);
    if (gens.empty()) {
      return Status::FailedPrecondition(
          "no snapshot generation to append WAL records to");
    }
    gen = gens.back();
    newest_generation_[key] = gen;
  }
  const std::string path = WalPathFor(key, gen);
  const FaultKind fault = injector != nullptr
                              ? injector->Next(kFaultSiteWalAppend)
                              : FaultKind::kNone;
  switch (fault) {
    case FaultKind::kTornWrite: {
      // Torn group commit: a prefix of the batch reaches disk. Not retried
      // — the tear stays for the CRC framing to drop on read.
      const size_t keep = injector->TornPrefixLength(batch.size());
      AppendBytesToFile(path, std::string_view(batch).substr(0, keep));
      return Status::IOError("injected crash: torn WAL append to " + path);
    }
    case FaultKind::kIOError:
    case FaultKind::kCrashBeforeRename:
      return Status::IOError("injected WAL append fault");
    default:
      break;
  }
  SAMPWH_RETURN_IF_ERROR(AppendBytesToFile(path, batch));
  NoteWalAppend(records.size());
  return Status::OK();
}

Result<CheckpointChain> FileSampleStore::GetCheckpointChain(
    const DatasetId& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(key));
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  std::vector<uint64_t> gens = CheckpointGenerations(key);
  while (!gens.empty()) {
    const uint64_t gen = gens.back();
    const std::string path = CheckpointPathFor(key, gen);
    gens.pop_back();
    std::string bytes;
    std::chrono::microseconds backoff = policy.initial_backoff;
    Status status;
    for (int attempt = 1;; ++attempt) {
      const FaultKind fault = injector != nullptr
                                  ? injector->Next(kFaultSiteCheckpointRead)
                                  : FaultKind::kNone;
      status = fault == FaultKind::kIOError
                   ? Status::IOError("injected transient checkpoint read")
                   : ReadFile(path, &bytes);
      if (status.ok() && fault == FaultKind::kCorruptRead && !bytes.empty()) {
        bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
      }
      if (status.ok() || !status.IsIOError()) break;
      if (attempt >= policy.max_attempts) {
        NoteRetryExhausted();
        break;
      }
      NoteRetryAttempted();
      SleepBackoff(backoff);
      backoff *= 2;
    }
    if (status.IsIOError()) return status;
    if (!status.ok()) continue;  // vanished between list and read
    std::string_view payload;
    if (!UnwrapSampleEnvelope(bytes, &payload).ok()) {
      QuarantineCheckpointPath(path);
      QuarantineCheckpointPath(WalPathFor(key, gen));
      newest_generation_.erase(key);
      continue;
    }
    CheckpointChain chain;
    chain.generation = gen;
    chain.snapshot = std::string(payload);
    // Absent WAL = empty journal (a fresh generation); a read error is
    // treated the same — the snapshot alone is still a valid resume point,
    // deltas only refine it.
    std::string wal_bytes;
    if (ReadFile(WalPathFor(key, gen), &wal_bytes).ok()) {
      CheckpointWalParse parse = ParseCheckpointWal(wal_bytes);
      chain.deltas = std::move(parse.records);
      chain.torn_tail = parse.torn_tail;
    }
    NoteCheckpointRestored();
    return chain;
  }
  return Status::NotFound("no checkpoint for dataset");
}

Status FileSampleStore::DeleteCheckpoint(const DatasetId& dataset) {
  SAMPWH_RETURN_IF_ERROR(ValidateCheckpointKey(dataset));
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  newest_generation_.erase(dataset);
  const std::vector<uint64_t> gens = CheckpointGenerations(dataset);
  if (gens.empty()) return Status::NotFound("no checkpoint for dataset");
  for (const uint64_t gen : gens) {
    std::error_code remove_ec;
    std::filesystem::remove(CheckpointPathFor(dataset, gen), remove_ec);
    std::filesystem::remove(WalPathFor(dataset, gen), remove_ec);
  }
  return Status::OK();
}

Result<std::vector<DatasetId>> FileSampleStore::ListCheckpoints() const {
  std::vector<DatasetId> datasets;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    DatasetId dataset;
    uint64_t gen;
    if (ParseCheckpointName(entry.path().filename().string(), &dataset,
                            &gen)) {
      datasets.push_back(dataset);
    }
  }
  if (ec) return Status::IOError("cannot list " + directory_);
  std::sort(datasets.begin(), datasets.end());
  datasets.erase(std::unique(datasets.begin(), datasets.end()),
                 datasets.end());
  return datasets;
}

}  // namespace sampwh
