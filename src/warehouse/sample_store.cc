#include "src/warehouse/sample_store.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/util/serialization.h"

namespace sampwh {

namespace {

std::string SerializeSample(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return WrapSampleEnvelope(writer.buffer());
}

// Decodes stored bytes: v2 envelope (verified) or bare v1 payload from a
// pre-envelope store. Every decode failure is normalized to Corruption so
// both backends surface one category for damaged payloads.
Result<PartitionSample> DeserializeSample(const std::string& bytes) {
  std::string_view payload(bytes);
  if (HasSampleEnvelope(bytes)) {
    SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(bytes, &payload));
  }
  BinaryReader reader(payload);
  Result<PartitionSample> decoded = PartitionSample::DeserializeFrom(&reader);
  if (!decoded.ok()) {
    return Status::Corruption("corrupt sample payload: " +
                              decoded.status().message());
  }
  return decoded;
}

// Full verification for recovery scans: envelope + decode + structural
// invariants.
Status VerifySampleBytes(const std::string& bytes) {
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample sample, DeserializeSample(bytes));
  return sample.Validate();
}

bool HasSuffix(const std::string& name, std::string_view suffix) {
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSampleFileName(const std::string& name) {
  return HasSuffix(name, ".sample");
}

void SleepBackoff(std::chrono::microseconds backoff) {
  if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
}

}  // namespace

void SampleStore::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(config_mu_);
  injector_ = std::move(injector);
}

void SampleStore::SetRetryPolicy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(config_mu_);
  retry_policy_ = policy;
  if (retry_policy_.max_attempts < 1) retry_policy_.max_attempts = 1;
}

SampleStore::RetryPolicy SampleStore::retry_policy() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return retry_policy_;
}

std::shared_ptr<FaultInjector> SampleStore::fault_injector() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return injector_;
}

Result<RecoveryReport> SampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  for (const PartitionKey& key : expected) {
    if (!Get(key).ok()) report.missing_partitions.push_back(key);
  }
  return report;
}

Result<std::vector<PartitionSample>> SampleStore::GetMany(
    const std::vector<PartitionKey>& keys, ThreadPool* pool) const {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  auto fetch_one = [&](size_t i) -> Result<PartitionSample> {
    // Prefetch-task site: a fault here models a fetch task dying before it
    // reaches the store (scheduler/pool-level failure). The whole GetMany
    // must fail — never a partial vector.
    if (injector != nullptr &&
        injector->Next(kFaultSiteGetManyTask) == FaultKind::kIOError) {
      return Status::IOError("injected prefetch-task fault");
    }
    return Get(keys[i]);
  };

  std::vector<PartitionSample> out(keys.size());
  if (pool == nullptr || keys.size() < 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      SAMPWH_ASSIGN_OR_RETURN(out[i], fetch_one(i));
    }
    return out;
  }
  // One task per key with private completion tracking — never
  // ThreadPool::Wait, which would also wait on unrelated work sharing the
  // pool (and deadlock if called from a pool task).
  std::vector<Status> statuses(keys.size(), Status::OK());
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = keys.size();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tasks.push_back([&, i] {
      Result<PartitionSample> r = fetch_one(i);
      if (r.ok()) {
        out[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  pool->SubmitBatch(std::move(tasks));
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  for (const Status& status : statuses) SAMPWH_RETURN_IF_ERROR(status);
  return out;
}

Status InMemorySampleStore::Put(const PartitionKey& key,
                                const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  std::string bytes = SerializeSample(sample);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSitePutWrite)
                                : FaultKind::kNone;
    switch (fault) {
      case FaultKind::kTornWrite: {
        // The in-memory analogue of a tear: the stored blob is a prefix of
        // the enveloped bytes; the CRC layer catches it on read.
        const size_t keep = injector->TornPrefixLength(bytes.size());
        std::lock_guard<std::mutex> lock(mu_);
        samples_[key] = bytes.substr(0, keep);
        return Status::IOError("injected crash: torn write");
      }
      case FaultKind::kCrashBeforeRename:
        // Crash before publication: nothing was stored.
        return Status::IOError("injected crash before publish");
      case FaultKind::kIOError:
        if (attempt >= policy.max_attempts) {
          return Status::IOError("injected transient write fault");
        }
        SleepBackoff(backoff);
        backoff *= 2;
        continue;
      default: {
        std::lock_guard<std::mutex> lock(mu_);
        samples_[key] = std::move(bytes);
        return Status::OK();
      }
    }
  }
}

Result<PartitionSample> InMemorySampleStore::Get(
    const PartitionKey& key) const {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  // Copy the serialized form under the lock, deserialize outside it, so
  // concurrent GetMany fetches overlap the (dominant) decode work.
  std::string bytes;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSiteGetRead)
                                : FaultKind::kNone;
    if (fault == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        return Status::IOError("injected transient read fault");
      }
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = samples_.find(key);
      if (it == samples_.end()) {
        return Status::NotFound("no sample for partition");
      }
      bytes = it->second;
    }
    if (fault == FaultKind::kCorruptRead && !bytes.empty()) {
      bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
    }
    break;
  }
  return DeserializeSample(bytes);
}

Status InMemorySampleStore::Delete(const PartitionKey& key) {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr &&
        injector->Next(kFaultSiteDelete) == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        return Status::IOError("injected transient delete fault");
      }
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.erase(key) == 0) {
    return Status::NotFound("no sample for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> InMemorySampleStore::List(
    const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartitionId> ids;
  for (auto it = samples_.lower_bound(PartitionKey{dataset, 0});
       it != samples_.end() && it->first.dataset == dataset; ++it) {
    ids.push_back(it->first.partition);
  }
  return ids;
}

uint64_t InMemorySampleStore::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, bytes] : samples_) total += bytes.size();
  return total;
}

Result<RecoveryReport> InMemorySampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = samples_.begin(); it != samples_.end();) {
      ++report.scanned;
      if (!VerifySampleBytes(it->second).ok()) {
        report.quarantined.push_back(it->first.dataset + "." +
                                     std::to_string(it->first.partition));
        it = samples_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const PartitionKey& key : expected) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.find(key) == samples_.end()) {
      report.missing_partitions.push_back(key);
    }
  }
  return report;
}

FileSampleStore::FileSampleStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<std::unique_ptr<FileSampleStore>> FileSampleStore::Open(
    const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create sample directory " + directory +
                           ": " + ec.message());
  }
  return std::unique_ptr<FileSampleStore>(new FileSampleStore(directory));
}

std::string FileSampleStore::PathFor(const PartitionKey& key) const {
  return directory_ + "/" + key.dataset + "." +
         std::to_string(key.partition) + ".sample";
}

size_t FileSampleStore::StripeIndexForTesting(const PartitionKey& key) {
  return PartitionKeyHash{}(key) % kLockStripes;
}

std::mutex& FileSampleStore::StripeFor(const PartitionKey& key) const {
  return stripes_[PartitionKeyHash{}(key) % kLockStripes];
}

void FileSampleStore::SetReadHookForTesting(
    std::function<void(const PartitionKey&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  read_hook_ = std::move(hook);
}

Status FileSampleStore::WriteSampleFile(const PartitionKey& key,
                                        const std::string& path,
                                        const std::string& bytes) {
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    const FaultKind fault = injector != nullptr
                                ? injector->Next(kFaultSitePutWrite)
                                : FaultKind::kNone;
    Status status;
    switch (fault) {
      case FaultKind::kTornWrite: {
        // Simulated power loss after the rename: the destination holds a
        // prefix of the bytes. Not retried — the tear must stay for
        // Recover() to find.
        const size_t keep = injector->TornPrefixLength(bytes.size());
        WriteFileAtomic(path, std::string_view(bytes).substr(0, keep));
        return Status::IOError("injected crash: torn write of " + path);
      }
      case FaultKind::kCrashBeforeRename: {
        // Simulated crash between the temp write and its rename: the temp
        // file is orphaned, the destination untouched. Not retried.
        const std::string tmp = path + ".tmp";
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(bytes.data(), 1, bytes.size(), f);
          std::fclose(f);
        }
        return Status::IOError("injected crash before rename of " + path);
      }
      case FaultKind::kIOError:
        status = Status::IOError("injected transient write fault");
        break;
      default:
        status = WriteFileAtomic(path, bytes);
        break;
    }
    if (status.ok() || !status.IsIOError() ||
        attempt >= policy.max_attempts) {
      return status;
    }
    SleepBackoff(backoff);
    backoff *= 2;
  }
}

void FileSampleStore::QuarantineFile(const PartitionKey& key,
                                     const std::string& path) const {
  std::lock_guard<std::mutex> lock(StripeFor(key));
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantine", ec);
  // Best effort: if the rename races a concurrent replace or delete, the
  // corrupt bytes are already gone.
}

Status FileSampleStore::Put(const PartitionKey& key,
                            const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const std::string bytes = SerializeSample(sample);
  std::lock_guard<std::mutex> lock(StripeFor(key));
  return WriteSampleFile(key, PathFor(key), bytes);
}

Result<PartitionSample> FileSampleStore::Get(const PartitionKey& key) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  std::function<void(const PartitionKey&)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = read_hook_;
  }
  const std::string path = PathFor(key);
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(StripeFor(key));
    if (hook) hook(key);
    std::chrono::microseconds backoff = policy.initial_backoff;
    for (int attempt = 1;; ++attempt) {
      const FaultKind fault = injector != nullptr
                                  ? injector->Next(kFaultSiteGetRead)
                                  : FaultKind::kNone;
      Status status = fault == FaultKind::kIOError
                          ? Status::IOError("injected transient read fault")
                          : ReadFile(path, &bytes);
      if (status.ok() && fault == FaultKind::kCorruptRead && !bytes.empty()) {
        bytes[injector->CorruptByteIndex(bytes.size())] ^= 0x01;
      }
      if (status.ok()) break;
      if (!status.IsIOError() || attempt >= policy.max_attempts) {
        return status;
      }
      SleepBackoff(backoff);
      backoff *= 2;
    }
  }
  Result<PartitionSample> decoded = DeserializeSample(bytes);
  if (!decoded.ok()) {
    // Detected tear/corruption: move the damaged file aside so it is never
    // re-served (and a fresh Put of the key starts clean), keep it on disk
    // for inspection.
    QuarantineFile(key, path);
    return decoded.status();
  }
  return decoded;
}

Status FileSampleStore::Delete(const PartitionKey& key) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.dataset));
  const std::shared_ptr<FaultInjector> injector = fault_injector();
  const RetryPolicy policy = retry_policy();
  std::chrono::microseconds backoff = policy.initial_backoff;
  std::lock_guard<std::mutex> lock(StripeFor(key));
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr &&
        injector->Next(kFaultSiteDelete) == FaultKind::kIOError) {
      if (attempt >= policy.max_attempts) {
        return Status::IOError("injected transient delete fault");
      }
      SleepBackoff(backoff);
      backoff *= 2;
      continue;
    }
    break;
  }
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(key), ec) || ec) {
    return Status::NotFound("no sample file for partition");
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> FileSampleStore::List(
    const DatasetId& dataset) const {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(dataset));
  // Lock-free: the directory scan relies on the filesystem's own atomicity
  // (atomic-replace Puts and unlink Deletes), so a List never blocks — or
  // is blocked by — reads and writes of individual samples.
  std::vector<PartitionId> ids;
  const std::string prefix = dataset + ".";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t id_begin = prefix.size();
    const size_t id_end = name.find(".sample", id_begin);
    if (id_end == std::string::npos ||
        name.size() != id_end + 7 /* strlen(".sample") */) {
      continue;
    }
    const std::string id_str = name.substr(id_begin, id_end - id_begin);
    if (id_str.empty() ||
        id_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::stoull(id_str));
  }
  if (ec) return Status::IOError("cannot list " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t FileSampleStore::TotalStoredBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!IsSampleFileName(name)) continue;
    const auto size = entry.file_size(ec);
    if (!ec) total += size;
  }
  return total;
}

Result<RecoveryReport> FileSampleStore::Recover(
    const std::vector<PartitionKey>& expected) {
  RecoveryReport report;
  std::vector<std::filesystem::path> temps;
  std::vector<std::filesystem::path> samples;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (HasSuffix(name, ".tmp")) {
      temps.push_back(entry.path());
    } else if (IsSampleFileName(name)) {
      samples.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::IOError("cannot scan " + directory_ + ": " + ec.message());
  }
  // Orphan temps are leftovers of writes that crashed before their rename;
  // the destination (if any) is still the last fully published version.
  for (const auto& tmp : temps) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    if (!remove_ec) {
      report.removed_temps.push_back(tmp.filename().string());
    }
  }
  for (const auto& path : samples) {
    ++report.scanned;
    std::string bytes;
    Status status = ReadFile(path.string(), &bytes);
    if (status.ok()) status = VerifySampleBytes(bytes);
    if (!status.ok()) {
      std::error_code rename_ec;
      std::filesystem::rename(path, path.string() + ".quarantine", rename_ec);
      report.quarantined.push_back(path.filename().string());
    }
  }
  for (const PartitionKey& key : expected) {
    std::error_code exists_ec;
    if (!std::filesystem::exists(PathFor(key), exists_ec)) {
      report.missing_partitions.push_back(key);
    }
  }
  return report;
}

}  // namespace sampwh
