#include "src/warehouse/checkpoint.h"

#include <utility>

#include "src/core/any_sampler.h"
#include "src/core/sample.h"
#include "src/util/serialization.h"

namespace sampwh {

namespace {

constexpr uint64_t kCheckpointVersion = 1;
constexpr uint64_t kCheckpointDeltaVersion = 1;

/// Upper bound on one WAL record payload; a parsed length past it is
/// treated as the torn tail rather than attempted as an allocation.
constexpr uint64_t kMaxWalRecordBytes = 256ull << 20;

}  // namespace

std::string IngestCheckpoint::Serialize() const {
  BinaryWriter writer;
  writer.PutFixed32(kCheckpointRecordMagic);
  writer.PutVarint64(kCheckpointVersion);
  writer.PutVarint64(next_sequence);
  writer.PutVarint64(partitions_started);
  writer.PutVarint64(created_unix_micros);
  writer.PutFixed64(rng.state_hi);
  writer.PutFixed64(rng.state_lo);
  writer.PutFixed64(rng.inc_hi);
  writer.PutFixed64(rng.inc_lo);
  writer.PutVarint64(rolled_in.size());
  for (const PartitionId id : rolled_in) writer.PutVarint64(id);
  writer.PutVarint64(progress.elements);
  writer.PutVarint64(progress.sample_size);
  writer.PutVarint64(progress.first_timestamp);
  writer.PutVarint64(progress.last_timestamp);
  writer.PutString(sampler_state);
  writer.PutVarint64(pending.has_value() ? 1 : 0);
  if (pending.has_value()) {
    writer.PutString(pending->sample_payload);
    writer.PutVarint64(pending->min_timestamp);
    writer.PutVarint64(pending->max_timestamp);
    writer.PutVarint64(pending->id_lower_bound);
  }
  return std::move(writer).Release();
}

Result<IngestCheckpoint> IngestCheckpoint::Deserialize(
    std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t magic;
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed32(&magic));
  if (magic != kCheckpointRecordMagic) {
    return Status::Corruption("not an ingest-checkpoint record");
  }
  uint64_t version;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported ingest-checkpoint version");
  }
  IngestCheckpoint ckpt;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.next_sequence));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.partitions_started));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.created_unix_micros));
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&ckpt.rng.state_hi));
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&ckpt.rng.state_lo));
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&ckpt.rng.inc_hi));
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&ckpt.rng.inc_lo));
  uint64_t rolled_in_count;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&rolled_in_count));
  if (rolled_in_count > reader.remaining()) {
    return Status::Corruption("ingest checkpoint: rolled-in count too large");
  }
  ckpt.rolled_in.reserve(rolled_in_count);
  for (uint64_t i = 0; i < rolled_in_count; ++i) {
    PartitionId id;
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&id));
    ckpt.rolled_in.push_back(id);
  }
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.progress.elements));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.progress.sample_size));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.progress.first_timestamp));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ckpt.progress.last_timestamp));
  SAMPWH_RETURN_IF_ERROR(reader.GetString(&ckpt.sampler_state));
  uint64_t has_pending;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&has_pending));
  if (has_pending > 1) {
    return Status::Corruption("ingest checkpoint: bad pending flag");
  }
  if (has_pending == 1) {
    PendingRollIn pending;
    SAMPWH_RETURN_IF_ERROR(reader.GetString(&pending.sample_payload));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&pending.min_timestamp));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&pending.max_timestamp));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&pending.id_lower_bound));
    ckpt.pending = std::move(pending);
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after ingest checkpoint");
  }
  // An open partition with elements must carry a sampler state to resume
  // from; the reverse (a sampler state with zero elements) is legal — the
  // sampler was created but nothing arrived since the last close.
  if (ckpt.progress.elements > 0 && ckpt.sampler_state.empty()) {
    return Status::Corruption(
        "ingest checkpoint: open partition without sampler state");
  }
  return ckpt;
}

Status VerifyCheckpointPayload(std::string_view bytes) {
  SAMPWH_ASSIGN_OR_RETURN(IngestCheckpoint ckpt,
                          IngestCheckpoint::Deserialize(bytes));
  if (!ckpt.sampler_state.empty()) {
    SAMPWH_RETURN_IF_ERROR(AnySampler::LoadState(ckpt.sampler_state).status());
  }
  if (ckpt.pending.has_value()) {
    BinaryReader reader(ckpt.pending->sample_payload);
    SAMPWH_ASSIGN_OR_RETURN(PartitionSample sample,
                            PartitionSample::DeserializeFrom(&reader));
    SAMPWH_RETURN_IF_ERROR(sample.Validate());
  }
  return Status::OK();
}

std::string CheckpointDeltaRecord::Serialize() const {
  BinaryWriter writer;
  writer.PutFixed32(kCheckpointDeltaRecordMagic);
  writer.PutVarint64(kCheckpointDeltaVersion);
  writer.PutVarint64(static_cast<uint64_t>(kind));
  if (kind == CheckpointDeltaKind::kClosePending) {
    writer.PutString(checkpoint_payload);
    return std::move(writer).Release();
  }
  writer.PutVarint64(next_sequence);
  writer.PutVarint64(partitions_started);
  writer.PutVarint64(created_unix_micros);
  writer.PutFixed64(rng.state_hi);
  writer.PutFixed64(rng.state_lo);
  writer.PutFixed64(rng.inc_hi);
  writer.PutFixed64(rng.inc_lo);
  writer.PutVarint64(progress.elements);
  writer.PutVarint64(progress.sample_size);
  writer.PutVarint64(progress.first_timestamp);
  writer.PutVarint64(progress.last_timestamp);
  return std::move(writer).Release();
}

Result<CheckpointDeltaRecord> CheckpointDeltaRecord::Deserialize(
    std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t magic;
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed32(&magic));
  if (magic != kCheckpointDeltaRecordMagic) {
    return Status::Corruption("not a checkpoint-delta record");
  }
  uint64_t version;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&version));
  if (version != kCheckpointDeltaVersion) {
    return Status::Corruption("unsupported checkpoint-delta version");
  }
  uint64_t kind;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&kind));
  CheckpointDeltaRecord record;
  switch (kind) {
    case static_cast<uint64_t>(CheckpointDeltaKind::kClosePending):
      record.kind = CheckpointDeltaKind::kClosePending;
      SAMPWH_RETURN_IF_ERROR(reader.GetString(&record.checkpoint_payload));
      break;
    case static_cast<uint64_t>(CheckpointDeltaKind::kProgress):
      record.kind = CheckpointDeltaKind::kProgress;
      SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&record.next_sequence));
      SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&record.partitions_started));
      SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&record.created_unix_micros));
      SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&record.rng.state_hi));
      SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&record.rng.state_lo));
      SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&record.rng.inc_hi));
      SAMPWH_RETURN_IF_ERROR(reader.GetFixed64(&record.rng.inc_lo));
      SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&record.progress.elements));
      SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&record.progress.sample_size));
      SAMPWH_RETURN_IF_ERROR(
          reader.GetVarint64(&record.progress.first_timestamp));
      SAMPWH_RETURN_IF_ERROR(
          reader.GetVarint64(&record.progress.last_timestamp));
      break;
    default:
      return Status::Corruption("checkpoint delta: unknown kind " +
                                std::to_string(kind));
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after checkpoint delta");
  }
  return record;
}

Status VerifyCheckpointDeltaPayload(std::string_view bytes) {
  SAMPWH_ASSIGN_OR_RETURN(CheckpointDeltaRecord record,
                          CheckpointDeltaRecord::Deserialize(bytes));
  if (record.kind == CheckpointDeltaKind::kClosePending) {
    SAMPWH_RETURN_IF_ERROR(VerifyCheckpointPayload(record.checkpoint_payload));
  }
  return Status::OK();
}

void AppendCheckpointWalFrame(std::string* wal, std::string_view payload) {
  BinaryWriter header;
  header.PutFixed32(static_cast<uint32_t>(payload.size()));
  header.PutFixed32(Crc32(payload));
  wal->append(header.buffer());
  wal->append(payload);
}

CheckpointWalParse ParseCheckpointWal(std::string_view wal) {
  CheckpointWalParse parse;
  size_t pos = 0;
  while (pos < wal.size()) {
    BinaryReader reader(wal.substr(pos));
    uint32_t length;
    uint32_t crc;
    if (!reader.GetFixed32(&length).ok() || !reader.GetFixed32(&crc).ok() ||
        length > kMaxWalRecordBytes ||
        length > wal.size() - pos - kCheckpointWalFrameBytes) {
      parse.torn_tail = true;
      break;
    }
    const std::string_view payload =
        wal.substr(pos + kCheckpointWalFrameBytes, length);
    if (Crc32(payload) != crc) {
      parse.torn_tail = true;
      break;
    }
    parse.records.emplace_back(payload);
    pos += kCheckpointWalFrameBytes + length;
  }
  parse.valid_bytes = pos;
  return parse;
}

Result<IngestCheckpoint> ResolveCheckpointChain(const CheckpointChain& chain) {
  SAMPWH_ASSIGN_OR_RETURN(IngestCheckpoint resolved,
                          IngestCheckpoint::Deserialize(chain.snapshot));
  for (const std::string& bytes : chain.deltas) {
    SAMPWH_ASSIGN_OR_RETURN(CheckpointDeltaRecord record,
                            CheckpointDeltaRecord::Deserialize(bytes));
    if (record.kind == CheckpointDeltaKind::kClosePending) {
      SAMPWH_ASSIGN_OR_RETURN(
          resolved, IngestCheckpoint::Deserialize(record.checkpoint_payload));
    }
    // kProgress records are observability only: they carry no sampler
    // state, so the last state-complete record wins regardless of trailing
    // progress advances.
  }
  return resolved;
}

}  // namespace sampwh
