#include "src/warehouse/stream_ingestor.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace sampwh {

StreamIngestor::StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                               std::unique_ptr<Partitioner> partitioner)
    : warehouse_(warehouse),
      dataset_(std::move(dataset)),
      partitioner_(std::move(partitioner)) {
  SAMPWH_CHECK(warehouse_ != nullptr);
}

void StreamIngestor::StartPartition() {
  sampler_.emplace(warehouse_->SamplerConfigFor(dataset_),
                   warehouse_->ForkRng());
  progress_ = PartitionProgress{};
}

void StreamIngestor::RefreshSampleSize() {
  if (sampler_.has_value()) progress_.sample_size = sampler_->sample_size();
}

Status StreamIngestor::CloseCurrentPartition() {
  if (!sampler_.has_value() || progress_.elements == 0) return Status::OK();
  RefreshSampleSize();
  PartitionSample sample = sampler_->Finalize();
  SAMPWH_ASSIGN_OR_RETURN(
      PartitionId id,
      warehouse_->RollIn(dataset_, sample, progress_.first_timestamp,
                         progress_.last_timestamp));
  rolled_in_.push_back(id);
  sampler_.reset();
  progress_ = PartitionProgress{};
  return Status::OK();
}

Status StreamIngestor::Append(Value v, uint64_t timestamp) {
  if (partitioner_ != nullptr && sampler_.has_value() &&
      partitioner_->ShouldCloseBefore(progress_, timestamp)) {
    SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
  }
  if (!sampler_.has_value()) StartPartition();

  if (progress_.elements == 0) progress_.first_timestamp = timestamp;
  progress_.last_timestamp = timestamp;
  sampler_->Add(v);
  ++progress_.elements;

  if (partitioner_ != nullptr) {
    RefreshSampleSize();
    if (partitioner_->ShouldCloseAfter(progress_)) {
      SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
    }
  }
  return Status::OK();
}

Status StreamIngestor::AppendBatch(std::span<const Value> values,
                                   uint64_t timestamp) {
  size_t i = 0;
  while (i < values.size()) {
    if (partitioner_ != nullptr && sampler_.has_value() &&
        partitioner_->ShouldCloseBefore(progress_, timestamp)) {
      SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
    }
    if (!sampler_.has_value()) StartPartition();

    uint64_t chunk = values.size() - i;
    if (partitioner_ != nullptr) {
      // MaxAppendable can be 0 when a close-before policy has headroom 0
      // but declined to close (e.g. an empty open partition); make forward
      // progress by appending at least one element.
      chunk = std::min(
          chunk, std::max<uint64_t>(partitioner_->MaxAppendable(progress_),
                                    uint64_t{1}));
    }
    if (progress_.elements == 0) progress_.first_timestamp = timestamp;
    progress_.last_timestamp = timestamp;
    sampler_->AddBatch(values.subspan(i, chunk));
    progress_.elements += chunk;
    i += chunk;

    if (partitioner_ != nullptr) {
      RefreshSampleSize();
      if (partitioner_->ShouldCloseAfter(progress_)) {
        SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
      }
    }
  }
  return Status::OK();
}

Status StreamIngestor::Flush() { return CloseCurrentPartition(); }

}  // namespace sampwh
