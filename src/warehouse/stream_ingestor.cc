#include "src/warehouse/stream_ingestor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/logging.h"
#include "src/util/serialization.h"
#include "src/warehouse/checkpoint.h"

namespace sampwh {

namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StreamIngestor::StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                               std::unique_ptr<Partitioner> partitioner)
    : StreamIngestor(warehouse, std::move(dataset), std::move(partitioner),
                     warehouse != nullptr ? warehouse->ForkRng() : Pcg64(0),
                     /*checkpoint_key=*/{}) {}

StreamIngestor::StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                               std::unique_ptr<Partitioner> partitioner,
                               Pcg64 rng, std::string checkpoint_key)
    : warehouse_(warehouse),
      dataset_(std::move(dataset)),
      checkpoint_key_(checkpoint_key.empty() ? dataset_
                                             : std::move(checkpoint_key)),
      partitioner_(std::move(partitioner)),
      rng_(std::move(rng)) {
  SAMPWH_CHECK(warehouse_ != nullptr);
}

void StreamIngestor::StartPartition() {
  // Fork the partition's sampler stream from the ingestor's OWN engine,
  // keyed by the partition ordinal. Both the engine and the ordinal are
  // checkpointed, so a resumed ingestor reproduces the exact RNG stream an
  // uninterrupted run would have used for this and every later partition.
  sampler_.emplace(warehouse_->SamplerConfigFor(dataset_),
                   rng_.Fork(partitions_started_));
  ++partitions_started_;
  progress_ = PartitionProgress{};
}

void StreamIngestor::RefreshSampleSize() {
  if (sampler_.has_value()) progress_.sample_size = sampler_->sample_size();
}

Result<PartitionId> StreamIngestor::NextIdLowerBound() const {
  SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> parts,
                          warehouse_->ListPartitions(dataset_));
  PartitionId bound = 0;
  for (const PartitionInfo& p : parts) {
    bound = std::max(bound, p.id + 1);
  }
  return bound;
}

Status StreamIngestor::CloseCurrentPartition() {
  if (!sampler_.has_value() || progress_.elements == 0) return Status::OK();
  RefreshSampleSize();
  PendingClose pending;
  pending.sample = sampler_->Finalize();
  pending.min_timestamp = progress_.first_timestamp;
  pending.max_timestamp = progress_.last_timestamp;
  SAMPWH_ASSIGN_OR_RETURN(pending.id_lower_bound, NextIdLowerBound());
  pending_ = std::move(pending);
  sampler_.reset();
  progress_ = PartitionProgress{};
  return CompletePendingClose();
}

Status StreamIngestor::CompletePendingClose() {
  if (!pending_.has_value()) return Status::OK();
  // Checkpoint A: record the finalized sample durably BEFORE RollIn, so a
  // crash in the window between them is reconciled on resume instead of
  // replaying the partition's elements into a duplicate. A failure here
  // leaves pending_ set; the next append (or an explicit Checkpoint())
  // retries the whole close. This is the one cadenceless write that stays
  // a synchronous barrier even in asynchronous mode — exactly-once replay
  // depends on A being durable before the roll-in it describes.
  if (checkpoints_enabled_ && !pending_->checkpointed) {
    if (channel_ != nullptr) {
      SAMPWH_RETURN_IF_ERROR(
          channel_->WriteDurableClose(BuildCheckpointPayload()));
      anchored_ = true;
      ResetCadence();
    } else {
      SAMPWH_RETURN_IF_ERROR(WriteCheckpoint());
    }
    pending_->checkpointed = true;
  }
  SAMPWH_ASSIGN_OR_RETURN(
      PartitionId id,
      warehouse_->RollIn(dataset_, pending_->sample, pending_->min_timestamp,
                         pending_->max_timestamp));
  rolled_in_.push_back(id);
  pending_.reset();
  // Checkpoint B clears the pending record. Best effort: if it is lost, a
  // resume from checkpoint A finds the rolled-in partition at or above
  // id_lower_bound and adopts it instead of rolling in twice.
  if (checkpoints_enabled_) WriteCloseComplete();
  return Status::OK();
}

std::string StreamIngestor::BuildCheckpointPayload() const {
  IngestCheckpoint ckpt;
  ckpt.next_sequence = next_sequence_;
  ckpt.partitions_started = partitions_started_;
  ckpt.created_unix_micros = NowUnixMicros();
  ckpt.rng = rng_.SaveState();
  ckpt.rolled_in = rolled_in_;
  ckpt.progress = progress_;
  if (sampler_.has_value()) ckpt.sampler_state = sampler_->SaveState();
  if (pending_.has_value()) {
    PendingRollIn pending;
    BinaryWriter writer;
    pending_->sample.SerializeTo(&writer);
    pending.sample_payload = std::move(writer).Release();
    pending.min_timestamp = pending_->min_timestamp;
    pending.max_timestamp = pending_->max_timestamp;
    pending.id_lower_bound = pending_->id_lower_bound;
    ckpt.pending = std::move(pending);
  }
  return ckpt.Serialize();
}

Status StreamIngestor::WriteCheckpoint() {
  SAMPWH_RETURN_IF_ERROR(warehouse_->PutIngestCheckpointKeyed(
      dataset_, checkpoint_key_, BuildCheckpointPayload()));
  anchored_ = true;
  ResetCadence();
  return Status::OK();
}

void StreamIngestor::WriteCloseComplete() {
  if (channel_ != nullptr) {
    // A state-complete close record (pending just cleared): rides the WAL
    // as the newest resume point without rotating a snapshot generation.
    channel_->PushClose(BuildCheckpointPayload());
    anchored_ = true;
    ResetCadence();
  } else {
    WriteCheckpoint();
  }
}

void StreamIngestor::ResetCadence() {
  elements_since_checkpoint_ = 0;
  last_checkpoint_tick_ = progress_.last_timestamp;
}

void StreamIngestor::MaybeCheckpoint() {
  if (!checkpoints_enabled_ || pending_.has_value()) return;
  const bool by_count = policy_.every_n_elements > 0 &&
                        elements_since_checkpoint_ >= policy_.every_n_elements;
  const bool by_time =
      policy_.every_t_ticks > 0 &&
      progress_.last_timestamp >=
          last_checkpoint_tick_ + policy_.every_t_ticks;
  if (!by_count && !by_time) return;
  // Cadence checkpoints are an optimization of resume granularity, not a
  // correctness requirement — a failed write (or a full ring) only means
  // more replay.
  if (channel_ == nullptr) {
    WriteCheckpoint();
    return;
  }
  if (!anchored_ || snapshot_requested_ || channel_->TakeWantsSnapshot()) {
    // Anchor or compaction point: a full snapshot rotates the generation
    // and resets the delta chain.
    if (channel_->OfferSnapshot(BuildCheckpointPayload())) {
      anchored_ = true;
      snapshot_requested_ = false;
      ResetCadence();
    } else {
      snapshot_requested_ = true;  // ring full — retry next cadence point
    }
    return;
  }
  CheckpointDeltaRecord record;
  record.next_sequence = next_sequence_;
  record.partitions_started = partitions_started_;
  record.created_unix_micros = NowUnixMicros();
  record.rng = rng_.SaveState();
  record.progress = progress_;
  if (channel_->OfferDelta(record)) ResetCadence();
}

void StreamIngestor::EnableCheckpoints(const CheckpointPolicy& policy) {
  checkpoints_enabled_ = true;
  policy_ = policy;
  if (policy.synchronous || channel_ != nullptr) return;
  if (owned_writer_ == nullptr) {
    CheckpointWriter::Options options;
    options.group_commit_micros = policy.group_commit_micros;
    options.snapshot_every_wal_bytes = policy.snapshot_every_wal_bytes;
    options.snapshot_every_deltas = policy.snapshot_every_deltas;
    owned_writer_ = std::make_unique<CheckpointWriter>(warehouse_, options);
  }
  channel_ = owned_writer_->AddChannel(dataset_, checkpoint_key_, anchored_);
}

void StreamIngestor::EnableCheckpoints(const CheckpointPolicy& policy,
                                       CheckpointWriter* writer) {
  if (policy.synchronous || writer == nullptr) {
    EnableCheckpoints(policy);
    return;
  }
  checkpoints_enabled_ = true;
  policy_ = policy;
  if (channel_ == nullptr) {
    channel_ = writer->AddChannel(dataset_, checkpoint_key_, anchored_);
  }
}

Status StreamIngestor::Checkpoint() {
  if (pending_.has_value()) {
    // Finish the interrupted close first so the checkpoint reflects a
    // settled state (and records the roll-in as complete).
    SAMPWH_RETURN_IF_ERROR(CompletePendingClose());
    // In synchronous mode checkpoint B was just written inline; in
    // asynchronous mode it is only queued, so fall through to the barrier.
    if (checkpoints_enabled_ && channel_ == nullptr) return Status::OK();
  }
  if (channel_ != nullptr) {
    SAMPWH_RETURN_IF_ERROR(
        channel_->WriteDurableSnapshot(BuildCheckpointPayload()));
    anchored_ = true;
    snapshot_requested_ = false;
    ResetCadence();
    return Status::OK();
  }
  return WriteCheckpoint();
}

Status StreamIngestor::Append(Value v, uint64_t timestamp) {
  return AppendAt(next_sequence_, v, timestamp);
}

Status StreamIngestor::AppendBatch(std::span<const Value> values,
                                   uint64_t timestamp) {
  return AppendBatchAt(next_sequence_, values, timestamp);
}

Status StreamIngestor::AppendAt(uint64_t sequence, Value v,
                                uint64_t timestamp) {
  return AppendBatchAt(sequence, std::span<const Value>(&v, 1), timestamp);
}

Status StreamIngestor::AppendBatchAt(uint64_t sequence,
                                     std::span<const Value> values,
                                     uint64_t timestamp) {
  SAMPWH_RETURN_IF_ERROR(CompletePendingClose());
  if (sequence > next_sequence_) {
    return Status::FailedPrecondition(
        "sequence gap: batch starts at " + std::to_string(sequence) +
        " but the watermark is " + std::to_string(next_sequence_));
  }
  if (sequence + values.size() <= next_sequence_) {
    // Entirely below the watermark: an at-least-once redelivery of work
    // already applied. Acknowledge so the source can advance.
    return Status::OK();
  }
  // Apply only the unapplied suffix of a straddling batch.
  values = values.subspan(next_sequence_ - sequence);

  size_t i = 0;
  while (i < values.size()) {
    if (partitioner_ != nullptr && sampler_.has_value() &&
        partitioner_->ShouldCloseBefore(progress_, timestamp)) {
      SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
    }
    if (!sampler_.has_value()) StartPartition();

    uint64_t chunk = values.size() - i;
    if (partitioner_ != nullptr) {
      // MaxAppendable can be 0 when a close-before policy has headroom 0
      // but declined to close (e.g. an empty open partition); make forward
      // progress by appending at least one element.
      chunk = std::min(
          chunk, std::max<uint64_t>(partitioner_->MaxAppendable(progress_),
                                    uint64_t{1}));
    }
    if (progress_.elements == 0) progress_.first_timestamp = timestamp;
    progress_.last_timestamp = timestamp;
    sampler_->AddBatch(values.subspan(i, chunk));
    progress_.elements += chunk;
    next_sequence_ += chunk;
    elements_since_checkpoint_ += chunk;
    i += chunk;

    if (partitioner_ != nullptr) {
      RefreshSampleSize();
      if (partitioner_->ShouldCloseAfter(progress_)) {
        SAMPWH_RETURN_IF_ERROR(CloseCurrentPartition());
      }
    }
    MaybeCheckpoint();
  }
  return Status::OK();
}

Status StreamIngestor::Flush() {
  SAMPWH_RETURN_IF_ERROR(CompletePendingClose());
  return CloseCurrentPartition();
}

Result<std::unique_ptr<StreamIngestor>> StreamIngestor::Resume(
    Warehouse* warehouse, DatasetId dataset,
    std::unique_ptr<Partitioner> partitioner, const CheckpointPolicy& policy,
    std::string checkpoint_key, CheckpointWriter* shared_writer) {
  if (warehouse == nullptr) {
    return Status::InvalidArgument("null warehouse");
  }
  if (checkpoint_key.empty()) checkpoint_key = dataset;
  SAMPWH_ASSIGN_OR_RETURN(
      CheckpointChain chain,
      warehouse->GetIngestCheckpointChain(checkpoint_key));
  SAMPWH_ASSIGN_OR_RETURN(IngestCheckpoint ckpt,
                          ResolveCheckpointChain(chain));

  auto ingestor = std::unique_ptr<StreamIngestor>(new StreamIngestor(
      warehouse, std::move(dataset), std::move(partitioner),
      Pcg64::FromState(ckpt.rng), std::move(checkpoint_key)));
  ingestor->next_sequence_ = ckpt.next_sequence;
  ingestor->partitions_started_ = ckpt.partitions_started;
  ingestor->rolled_in_ = std::move(ckpt.rolled_in);
  ingestor->progress_ = ckpt.progress;
  if (!ckpt.sampler_state.empty()) {
    SAMPWH_ASSIGN_OR_RETURN(AnySampler sampler,
                            AnySampler::LoadState(ckpt.sampler_state));
    ingestor->sampler_.emplace(std::move(sampler));
  }
  // The chain we just resumed from has a verified snapshot generation, so
  // delta records appended by the new incarnation extend a valid chain.
  ingestor->anchored_ = true;
  ingestor->EnableCheckpoints(policy, shared_writer);

  if (ckpt.pending.has_value()) {
    // The crash hit the close protocol between checkpoint A and checkpoint
    // B. Decide from the catalog whether the roll-in completed.
    BinaryReader reader(ckpt.pending->sample_payload);
    SAMPWH_ASSIGN_OR_RETURN(PartitionSample sample,
                            PartitionSample::DeserializeFrom(&reader));
    SAMPWH_ASSIGN_OR_RETURN(
        std::vector<PartitionInfo> parts,
        warehouse->ListPartitions(ingestor->dataset_));
    PartitionId adopted = 0;
    bool found = false;
    for (const PartitionInfo& p : parts) {
      if (p.id >= ckpt.pending->id_lower_bound &&
          (!found || p.id < adopted)) {
        adopted = p.id;
        found = true;
      }
    }
    if (found) {
      // Roll-in completed before the crash: adopt it, then persist
      // checkpoint B so a second resume does not re-run this branch
      // against a catalog that moved on.
      ingestor->rolled_in_.push_back(adopted);
      ingestor->WriteCloseComplete();  // best effort
    } else {
      PendingClose pending;
      pending.sample = std::move(sample);
      pending.min_timestamp = ckpt.pending->min_timestamp;
      pending.max_timestamp = ckpt.pending->max_timestamp;
      pending.id_lower_bound = ckpt.pending->id_lower_bound;
      pending.checkpointed = true;  // checkpoint A is what we resumed from
      ingestor->pending_ = std::move(pending);
      SAMPWH_RETURN_IF_ERROR(ingestor->CompletePendingClose());
    }
  }
  return ingestor;
}

}  // namespace sampwh
