// Metadata catalog for the sample warehouse: which data sets exist, which
// partitions each one currently holds (rolled in and not yet rolled out),
// their parent sizes, sample phases and time ranges. The catalog is the
// owner of the disjointness contract the merge layer relies on: partitions
// of one data set are created disjoint (stream splits / temporal windows /
// batch divisions) and identified uniquely.

#ifndef SAMPWH_WAREHOUSE_CATALOG_H_
#define SAMPWH_WAREHOUSE_CATALOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/sample.h"
#include "src/util/serialization.h"
#include "src/warehouse/ids.h"

namespace sampwh {

struct PartitionInfo {
  PartitionId id = 0;
  uint64_t parent_size = 0;
  uint64_t sample_size = 0;
  SamplePhase phase = SamplePhase::kExhaustive;
  /// Event-time range covered by the partition (0, 0 when untimed).
  uint64_t min_timestamp = 0;
  uint64_t max_timestamp = 0;
};

struct DatasetInfo {
  DatasetId id;
  uint64_t num_partitions = 0;
  uint64_t total_parent_size = 0;
  uint64_t total_sample_size = 0;
};

/// Not thread-safe by itself; the Warehouse serializes access.
class Catalog {
 public:
  Status CreateDataset(const DatasetId& id);
  Status DropDataset(const DatasetId& id);
  bool HasDataset(const DatasetId& id) const;
  std::vector<DatasetId> ListDatasets() const;
  Result<DatasetInfo> GetDatasetInfo(const DatasetId& id) const;

  /// Reserves the next partition id for `dataset`.
  Result<PartitionId> AllocatePartitionId(const DatasetId& dataset);

  /// Registers a rolled-in partition. The id must have been allocated (or
  /// be explicitly supplied by a remote producer) and be unused.
  Status AddPartition(const DatasetId& dataset, const PartitionInfo& info);

  /// Unregisters a rolled-out partition.
  Status RemovePartition(const DatasetId& dataset, PartitionId id);

  Result<PartitionInfo> GetPartition(const DatasetId& dataset,
                                     PartitionId id) const;
  Result<std::vector<PartitionInfo>> ListPartitions(
      const DatasetId& dataset) const;

  /// Partitions whose [min, max] timestamp range intersects [from, to].
  Result<std::vector<PartitionId>> PartitionsInTimeRange(
      const DatasetId& dataset, uint64_t from, uint64_t to) const;

  /// Manifest encoding: the full catalog state (datasets, allocators,
  /// partition metadata), so a file-backed warehouse can be reopened.
  void SerializeTo(BinaryWriter* writer) const;
  static Result<Catalog> DeserializeFrom(BinaryReader* reader);

 private:
  struct DatasetState {
    PartitionId next_partition_id = 0;
    std::map<PartitionId, PartitionInfo> partitions;
  };

  std::map<DatasetId, DatasetState> datasets_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_CATALOG_H_
