#include "src/warehouse/checkpoint_writer.h"

#include <chrono>
#include <utility>

#include "src/warehouse/warehouse.h"

namespace sampwh {

CheckpointWriter::Channel::Channel(CheckpointWriter* writer, DatasetId dataset,
                                   std::string key, size_t ring_capacity,
                                   bool have_generation)
    : writer_(writer),
      dataset_(std::move(dataset)),
      key_(std::move(key)),
      ring_(ring_capacity),
      have_generation_(have_generation) {}

bool CheckpointWriter::Channel::OfferDelta(
    const CheckpointDeltaRecord& record) {
  Slot slot;
  slot.record = record;
  // No signal: deltas ride the periodic group-commit wake. Signaling every
  // push would wake the writer per chunk and defeat batching.
  return ring_.TryPush(slot);
}

bool CheckpointWriter::Channel::OfferSnapshot(std::string payload) {
  Slot slot;
  slot.is_snapshot = true;
  slot.record.checkpoint_payload = std::move(payload);
  if (!ring_.TryPush(slot)) return false;
  writer_->Signal();
  return true;
}

void CheckpointWriter::Channel::BlockingPush(Slot slot) {
  while (!ring_.TryPush(slot)) {
    // Ring full: the writer has queued work — wake it and let it drain.
    writer_->Signal();
    std::this_thread::yield();
  }
  writer_->Signal();
}

Status CheckpointWriter::Channel::PushWithAck(Slot slot) {
  const std::shared_ptr<Ack> ack = std::make_shared<Ack>();
  slot.ack = ack;
  BlockingPush(std::move(slot));
  std::unique_lock<std::mutex> lock(ack->mu);
  ack->cv.wait(lock, [&] { return ack->done; });
  return ack->status;
}

void CheckpointWriter::Channel::PushSnapshot(std::string payload) {
  Slot slot;
  slot.is_snapshot = true;
  slot.record.checkpoint_payload = std::move(payload);
  BlockingPush(std::move(slot));
}

void CheckpointWriter::Channel::PushClose(std::string payload) {
  Slot slot;
  slot.record.kind = CheckpointDeltaKind::kClosePending;
  slot.record.checkpoint_payload = std::move(payload);
  BlockingPush(std::move(slot));
}

Status CheckpointWriter::Channel::WriteDurableSnapshot(std::string payload) {
  Slot slot;
  slot.is_snapshot = true;
  slot.record.checkpoint_payload = std::move(payload);
  return PushWithAck(std::move(slot));
}

Status CheckpointWriter::Channel::WriteDurableClose(std::string payload) {
  Slot slot;
  slot.record.kind = CheckpointDeltaKind::kClosePending;
  slot.record.checkpoint_payload = std::move(payload);
  return PushWithAck(std::move(slot));
}

bool CheckpointWriter::Channel::TakeWantsSnapshot() {
  return want_snapshot_.exchange(false, std::memory_order_relaxed);
}

CheckpointWriter::CheckpointWriter(Warehouse* warehouse,
                                   const Options& options)
    : warehouse_(warehouse), options_(options) {
  thread_ = std::thread([this] { WriterMain(); });
}

CheckpointWriter::~CheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

CheckpointWriter::Channel* CheckpointWriter::AddChannel(DatasetId dataset,
                                                        std::string key,
                                                        bool have_generation) {
  auto channel = std::unique_ptr<Channel>(
      new Channel(this, std::move(dataset), std::move(key),
                  options_.ring_capacity, have_generation));
  Channel* raw = channel.get();
  std::lock_guard<std::mutex> lock(channels_mu_);
  channels_.push_back(std::move(channel));
  return raw;
}

void CheckpointWriter::Signal() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    work_signal_ = true;
  }
  wake_cv_.notify_one();
}

void CheckpointWriter::CompleteAck(const std::shared_ptr<Channel::Ack>& ack,
                                   const Status& status) {
  if (ack == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(ack->mu);
    ack->status = status;
    ack->done = true;
  }
  ack->cv.notify_all();
}

void CheckpointWriter::WriterMain() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  for (;;) {
    wake_cv_.wait_for(lock,
                      std::chrono::microseconds(options_.group_commit_micros),
                      [&] { return work_signal_ || stop_; });
    work_signal_ = false;
    const bool stopping = stop_;
    lock.unlock();
    std::vector<Channel*> channels;
    {
      std::lock_guard<std::mutex> channels_lock(channels_mu_);
      channels.reserve(channels_.size());
      for (const auto& channel : channels_) channels.push_back(channel.get());
    }
    for (Channel* channel : channels) DrainChannel(channel);
    // The final drain after observing stop_ completes every queued ack, so
    // no producer blocked in PushWithAck is abandoned.
    if (stopping) return;
    lock.lock();
  }
}

void CheckpointWriter::DrainChannel(Channel* ch) {
  std::vector<std::string> batch;  // serialized WAL record payloads
  std::vector<std::shared_ptr<Channel::Ack>> batch_acks;
  bool pending_progress = false;
  CheckpointDeltaRecord progress;

  // Progress deltas are cumulative, so an adjacent run collapses to its
  // last record at flush time.
  auto flush_progress = [&] {
    if (!pending_progress) return;
    pending_progress = false;
    if (ch->wal_broken_ || !ch->have_generation_) {
      // Liveness records only — dropping them loses no resume point, but
      // the chain should re-anchor soon.
      ch->want_snapshot_.store(true, std::memory_order_relaxed);
      return;
    }
    batch.push_back(progress.Serialize());
  };

  auto flush_batch = [&] {
    flush_progress();
    Status status;
    if (!batch.empty()) {
      status = warehouse_->AppendIngestCheckpointDeltasKeyed(ch->dataset_,
                                                             ch->key_, batch);
      if (status.ok()) {
        for (const std::string& record : batch) {
          ch->wal_bytes_since_snapshot_ +=
              kCheckpointWalFrameBytes + record.size();
        }
        ch->wal_records_since_snapshot_ += batch.size();
      } else {
        // The append may have torn the WAL tail; never append past damage.
        ch->wal_broken_ = true;
        ch->want_snapshot_.store(true, std::memory_order_relaxed);
      }
      batch.clear();
    }
    for (const auto& ack : batch_acks) CompleteAck(ack, status);
    batch_acks.clear();
  };

  auto write_snapshot = [&](const std::string& payload,
                            const std::shared_ptr<Channel::Ack>& ack) {
    // Records queued ahead of the snapshot belong to the OLD generation's
    // WAL; land them before rotating.
    flush_batch();
    const Status status =
        warehouse_->PutIngestCheckpointKeyed(ch->dataset_, ch->key_, payload);
    if (status.ok()) {
      ch->have_generation_ = true;
      ch->wal_broken_ = false;
      ch->wal_bytes_since_snapshot_ = 0;
      ch->wal_records_since_snapshot_ = 0;
    } else {
      // A torn put can leave a damaged newest generation on disk; deltas
      // appended behind it would vanish from a fallback resume.
      ch->wal_broken_ = true;
      ch->want_snapshot_.store(true, std::memory_order_relaxed);
    }
    CompleteAck(ack, status);
  };

  Channel::Slot slot;
  while (ch->ring_.TryPop(&slot)) {
    if (slot.is_snapshot) {
      write_snapshot(slot.record.checkpoint_payload, slot.ack);
    } else if (slot.record.kind == CheckpointDeltaKind::kClosePending) {
      if (ch->wal_broken_ || !ch->have_generation_) {
        // The close record embeds a complete checkpoint — promote it to a
        // fresh snapshot generation, healing the broken chain.
        write_snapshot(slot.record.checkpoint_payload, slot.ack);
      } else {
        flush_progress();
        batch.push_back(slot.record.Serialize());
        if (slot.ack != nullptr) {
          // A durability barrier: commit the group now so the caller's
          // wait reflects this record actually reaching the WAL.
          batch_acks.push_back(slot.ack);
          flush_batch();
        }
      }
    } else {
      progress = std::move(slot.record);
      pending_progress = true;
    }
  }
  flush_batch();

  if (ch->have_generation_ && !ch->wal_broken_ &&
      (ch->wal_bytes_since_snapshot_ >= options_.snapshot_every_wal_bytes ||
       ch->wal_records_since_snapshot_ >= options_.snapshot_every_deltas)) {
    ch->want_snapshot_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace sampwh
