#include "src/warehouse/catalog.h"

#include <algorithm>

namespace sampwh {

Status Catalog::CreateDataset(const DatasetId& id) {
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(id));
  if (datasets_.contains(id)) {
    return Status::AlreadyExists("dataset exists: " + id);
  }
  datasets_.emplace(id, DatasetState{});
  return Status::OK();
}

Status Catalog::DropDataset(const DatasetId& id) {
  if (datasets_.erase(id) == 0) {
    return Status::NotFound("no dataset: " + id);
  }
  return Status::OK();
}

bool Catalog::HasDataset(const DatasetId& id) const {
  return datasets_.contains(id);
}

std::vector<DatasetId> Catalog::ListDatasets() const {
  std::vector<DatasetId> ids;
  ids.reserve(datasets_.size());
  for (const auto& [id, state] : datasets_) ids.push_back(id);
  return ids;
}

Result<DatasetInfo> Catalog::GetDatasetInfo(const DatasetId& id) const {
  const auto it = datasets_.find(id);
  if (it == datasets_.end()) return Status::NotFound("no dataset: " + id);
  DatasetInfo info;
  info.id = id;
  info.num_partitions = it->second.partitions.size();
  for (const auto& [pid, p] : it->second.partitions) {
    info.total_parent_size += p.parent_size;
    info.total_sample_size += p.sample_size;
  }
  return info;
}

Result<PartitionId> Catalog::AllocatePartitionId(const DatasetId& dataset) {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  return it->second.next_partition_id++;
}

Status Catalog::AddPartition(const DatasetId& dataset,
                             const PartitionInfo& info) {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  if (it->second.partitions.contains(info.id)) {
    return Status::AlreadyExists("partition already rolled in");
  }
  // Remote producers may supply their own ids; keep the allocator ahead.
  it->second.next_partition_id =
      std::max(it->second.next_partition_id, info.id + 1);
  it->second.partitions.emplace(info.id, info);
  return Status::OK();
}

Status Catalog::RemovePartition(const DatasetId& dataset, PartitionId id) {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  if (it->second.partitions.erase(id) == 0) {
    return Status::NotFound("no such partition");
  }
  return Status::OK();
}

Result<PartitionInfo> Catalog::GetPartition(const DatasetId& dataset,
                                            PartitionId id) const {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  const auto pit = it->second.partitions.find(id);
  if (pit == it->second.partitions.end()) {
    return Status::NotFound("no such partition");
  }
  return pit->second;
}

Result<std::vector<PartitionInfo>> Catalog::ListPartitions(
    const DatasetId& dataset) const {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset: " + dataset);
  }
  std::vector<PartitionInfo> infos;
  infos.reserve(it->second.partitions.size());
  for (const auto& [pid, p] : it->second.partitions) infos.push_back(p);
  return infos;
}

Result<std::vector<PartitionId>> Catalog::PartitionsInTimeRange(
    const DatasetId& dataset, uint64_t from, uint64_t to) const {
  SAMPWH_ASSIGN_OR_RETURN(std::vector<PartitionInfo> infos,
                          ListPartitions(dataset));
  std::vector<PartitionId> ids;
  for (const PartitionInfo& p : infos) {
    if (p.min_timestamp <= to && p.max_timestamp >= from) {
      ids.push_back(p.id);
    }
  }
  return ids;
}

namespace {
constexpr uint32_t kManifestMagic = 0x53574d31;  // "SWM1"
}  // namespace

void Catalog::SerializeTo(BinaryWriter* writer) const {
  writer->PutFixed32(kManifestMagic);
  writer->PutVarint64(datasets_.size());
  for (const auto& [id, state] : datasets_) {
    writer->PutString(id);
    writer->PutVarint64(state.next_partition_id);
    writer->PutVarint64(state.partitions.size());
    for (const auto& [pid, p] : state.partitions) {
      writer->PutVarint64(p.id);
      writer->PutVarint64(p.parent_size);
      writer->PutVarint64(p.sample_size);
      writer->PutVarint64(static_cast<uint64_t>(p.phase));
      writer->PutVarint64(p.min_timestamp);
      writer->PutVarint64(p.max_timestamp);
    }
  }
}

Result<Catalog> Catalog::DeserializeFrom(BinaryReader* reader) {
  uint32_t magic;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(&magic));
  if (magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  Catalog catalog;
  uint64_t num_datasets;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&num_datasets));
  for (uint64_t d = 0; d < num_datasets; ++d) {
    DatasetId id;
    SAMPWH_RETURN_IF_ERROR(reader->GetString(&id));
    SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(id));
    DatasetState state;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&state.next_partition_id));
    uint64_t num_partitions;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&num_partitions));
    for (uint64_t i = 0; i < num_partitions; ++i) {
      PartitionInfo p;
      uint64_t phase_raw;
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&p.id));
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&p.parent_size));
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&p.sample_size));
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&phase_raw));
      if (phase_raw < 1 || phase_raw > 3) {
        return Status::Corruption("bad phase in manifest");
      }
      p.phase = static_cast<SamplePhase>(phase_raw);
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&p.min_timestamp));
      SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&p.max_timestamp));
      if (p.id >= state.next_partition_id) {
        return Status::Corruption("partition id beyond allocator");
      }
      if (!state.partitions.emplace(p.id, p).second) {
        return Status::Corruption("duplicate partition in manifest");
      }
    }
    catalog.datasets_.emplace(std::move(id), std::move(state));
  }
  return catalog;
}

}  // namespace sampwh
