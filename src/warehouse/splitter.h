// Stream splitting (§2's second scenario: "the incoming stream could be
// split over a number of machines and samples from the concurrent sampling
// processes merged on demand"). The splitter assigns each arriving element
// to one of k workers; each worker runs its own StreamIngestor, and the
// per-worker partitions are later merged by the warehouse.
//
// Round-robin keeps worker loads perfectly balanced. Hash routing sends
// equal values to the same worker (useful when workers keep per-value
// state); both policies keep the sub-streams disjoint, which is all the
// merge layer requires.

#ifndef SAMPWH_WAREHOUSE_SPLITTER_H_
#define SAMPWH_WAREHOUSE_SPLITTER_H_

#include <cstddef>
#include <cstdint>

#include "src/core/types.h"

namespace sampwh {

enum class SplitPolicy {
  kRoundRobin,
  kHash,
};

class StreamSplitter {
 public:
  StreamSplitter(size_t num_workers, SplitPolicy policy);

  size_t num_workers() const { return num_workers_; }

  /// The worker that should receive `v`.
  size_t Route(Value v);

 private:
  size_t num_workers_;
  SplitPolicy policy_;
  size_t next_ = 0;  // round-robin cursor
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_SPLITTER_H_
