#include "src/warehouse/parallel_ingestor.h"

#include <time.h>

#include <algorithm>
#include <cctype>
#include <utility>

#include "src/util/logging.h"

namespace sampwh {

namespace {

/// Sequence value meaning "extend the stripe at its current watermark".
constexpr uint64_t kNoSequence = ~uint64_t{0};

/// Salt folded into the stripe RNG base so parallel-ingest streams never
/// collide with the warehouse's own Fork() streams under the same seed.
constexpr uint64_t kStripeRngSalt = 0x70696E67737464ULL;

uint64_t ThreadCpuNanos() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

/// One handoff unit on a producer→shard ring.
struct ShardBatch {
  uint64_t stripe = 0;
  uint64_t sequence = kNoSequence;
  uint64_t timestamp = 0;
  std::vector<Value> values;
};

// --- Producer --------------------------------------------------------------

ParallelIngestor::Producer::Producer(ParallelIngestor* owner) : owner_(owner) {
  rings_.reserve(owner_->num_shards());
  for (size_t s = 0; s < owner_->num_shards(); ++s) {
    rings_.push_back(
        std::make_unique<SpscRing<ShardBatch>>(owner_->options_.ring_capacity));
  }
}

ParallelIngestor::Producer::~Producer() = default;

Status ParallelIngestor::Producer::Append(uint64_t stripe,
                                          std::span<const Value> values,
                                          uint64_t timestamp) {
  return Push(stripe, kNoSequence, values, timestamp);
}

Status ParallelIngestor::Producer::AppendAt(uint64_t stripe, uint64_t sequence,
                                            std::span<const Value> values,
                                            uint64_t timestamp) {
  if (sequence == kNoSequence) {
    return Status::InvalidArgument("reserved sequence value");
  }
  return Push(stripe, sequence, values, timestamp);
}

Status ParallelIngestor::Producer::Push(uint64_t stripe, uint64_t sequence,
                                        std::span<const Value> values,
                                        uint64_t timestamp) {
  if (values.empty()) return Status::OK();
  const size_t shard = owner_->router_.ShardFor(stripe);
  ShardBatch batch;
  batch.stripe = stripe;
  batch.sequence = sequence;
  batch.timestamp = timestamp;
  batch.values.assign(values.begin(), values.end());
  SpscRing<ShardBatch>& ring = *rings_[shard];
  while (!ring.TryPush(batch)) {
    // Backpressure: the shard is behind. Never push after shutdown — the
    // consumer is gone and the spin would never end.
    if (owner_->stop_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("parallel ingestor is finished");
    }
    std::this_thread::yield();
  }
  owner_->pushed_[shard]->fetch_add(1, std::memory_order_release);
  return Status::OK();
}

// --- ParallelIngestor ------------------------------------------------------

ParallelIngestor::ParallelIngestor(Warehouse* warehouse, DatasetId dataset,
                                   PartitionerFactory partitioner_factory,
                                   ParallelIngestOptions options)
    : ParallelIngestor(warehouse, std::move(dataset),
                       std::move(partitioner_factory), std::move(options),
                       DeferStart{}) {
  StartThreads();
}

ParallelIngestor::ParallelIngestor(Warehouse* warehouse, DatasetId dataset,
                                   PartitionerFactory partitioner_factory,
                                   ParallelIngestOptions options, DeferStart)
    : warehouse_(warehouse),
      dataset_(std::move(dataset)),
      partitioner_factory_(std::move(partitioner_factory)),
      options_(std::move(options)),
      router_(dataset_,
              options_.shards != 0
                  ? options_.shards
                  : std::max<size_t>(1, std::thread::hardware_concurrency())),
      seed_base_(warehouse != nullptr
                     ? warehouse->options().seed ^
                           ShardRouter::HashBytes(dataset_) ^ kStripeRngSalt
                     : 0) {
  SAMPWH_CHECK(warehouse_ != nullptr);
  if (options_.enable_checkpoints && !options_.checkpoint_policy.synchronous) {
    CheckpointWriter::Options writer_options;
    writer_options.group_commit_micros =
        options_.checkpoint_policy.group_commit_micros;
    writer_options.ring_capacity = options_.checkpoint_ring_capacity;
    writer_options.snapshot_every_wal_bytes =
        options_.checkpoint_policy.snapshot_every_wal_bytes;
    writer_options.snapshot_every_deltas =
        options_.checkpoint_policy.snapshot_every_deltas;
    ckpt_writer_ = std::make_unique<CheckpointWriter>(warehouse_,
                                                      writer_options);
  }
  const size_t n = router_.num_shards();
  producers_.reserve(std::max<size_t>(options_.max_producers, 1));
  pushed_.reserve(n);
  applied_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    pushed_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    applied_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  stripes_.resize(n);
  shard_errors_.assign(n, Status::OK());
  stats_.resize(n);
}

ParallelIngestor::~ParallelIngestor() {
  // Crash semantics: stop without draining or flushing. In-flight ring
  // content is dropped; a checkpointed run resumes from its last durable
  // cursor exactly as after a real crash.
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ParallelIngestor::StartThreads() {
  const size_t n = router_.num_shards();
  threads_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    threads_.emplace_back([this, s] { ShardMain(s); });
  }
}

ParallelIngestor::Producer* ParallelIngestor::AddProducer() {
  std::lock_guard<std::mutex> lock(producers_mu_);
  // The table never reallocates (capacity fixed at construction), so shard
  // threads may scan published slots without taking producers_mu_.
  SAMPWH_CHECK(producers_.size() < producers_.capacity());
  producers_.push_back(std::unique_ptr<Producer>(new Producer(this)));
  producer_count_.store(producers_.size(), std::memory_order_release);
  return producers_.back().get();
}

void ParallelIngestor::ShardMain(size_t shard) {
  ShardBatch batch;
  while (true) {
    bool did_work = false;
    const size_t producers = producer_count_.load(std::memory_order_acquire);
    for (size_t p = 0; p < producers; ++p) {
      SpscRing<ShardBatch>& ring = *producers_[p]->rings_[shard];
      while (ring.TryPop(&batch)) {
        ApplyBatch(shard, batch);
        applied_[shard]->fetch_add(1, std::memory_order_release);
        did_work = true;
      }
    }
    if (!did_work) {
      // stop_ is only set with producers quiescent (Finish) or when ring
      // content may be abandoned (destructor), so an empty sweep under
      // stop_ means this shard is done.
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
  }
}

StreamIngestor* ParallelIngestor::StripeIngestor(size_t shard,
                                                 uint64_t stripe) {
  auto& owned = stripes_[shard];
  const auto it = owned.find(stripe);
  if (it != owned.end()) return it->second.get();
  // First contact with this stripe: its RNG stream is Pcg64(seed_base_,
  // stripe) — a pure function of (seed, dataset, stripe), so neither
  // arrival order nor shard count can change the stripe's randomness.
  auto ingestor = std::make_unique<StreamIngestor>(
      warehouse_, dataset_,
      partitioner_factory_ ? partitioner_factory_(stripe) : nullptr,
      Pcg64(seed_base_, stripe), CheckpointKeyFor(stripe));
  if (options_.enable_checkpoints) {
    // All stripes share the one background writer; each gets its own SPSC
    // lane, produced only by this shard thread.
    ingestor->EnableCheckpoints(options_.checkpoint_policy,
                                ckpt_writer_.get());
  }
  return owned.emplace(stripe, std::move(ingestor)).first->second.get();
}

void ParallelIngestor::ApplyBatch(size_t shard, ShardBatch& batch) {
  ShardIngestStats& stats = stats_[shard];
  ++stats.batches;
  stats.elements += batch.values.size();
  // Sticky per-shard error: keep draining (so Drain() terminates and other
  // stripes finish), surface the first failure from Drain()/Finish().
  if (!shard_errors_[shard].ok()) return;
  const uint64_t start = ThreadCpuNanos();
  StreamIngestor* ingestor = StripeIngestor(shard, batch.stripe);
  const Status status =
      batch.sequence == kNoSequence
          ? ingestor->AppendBatch(batch.values, batch.timestamp)
          : ingestor->AppendBatchAt(batch.sequence, batch.values,
                                    batch.timestamp);
  stats.busy_nanos += ThreadCpuNanos() - start;
  if (!status.ok()) shard_errors_[shard] = status;
}

std::string ParallelIngestor::CheckpointKeyFor(uint64_t stripe) const {
  return dataset_ + "#s" + std::to_string(stripe);
}

Status ParallelIngestor::Drain() {
  for (size_t s = 0; s < router_.num_shards(); ++s) {
    // Producers are quiescent, so pushed_[s] is its final value; the
    // acquire loads pair with the shard thread's release increments,
    // making every applied batch's effects visible here.
    const uint64_t target = pushed_[s]->load(std::memory_order_acquire);
    while (applied_[s]->load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
  for (const Status& status : shard_errors_) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ParallelIngestor::Finish() {
  if (!finished_) {
    const Status drained = Drain();
    stop_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    finished_ = true;
    if (!drained.ok()) return drained;
    // Flush stripes in ascending stripe order so the final partition
    // closes happen in a scheduling-independent order.
    std::map<uint64_t, StreamIngestor*> all;
    for (auto& shard : stripes_) {
      for (auto& [stripe, ingestor] : shard) all[stripe] = ingestor.get();
    }
    for (auto& [stripe, ingestor] : all) {
      SAMPWH_RETURN_IF_ERROR(ingestor->Flush());
    }
    return Status::OK();
  }
  for (const Status& status : shard_errors_) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

std::vector<PartitionId> ParallelIngestor::rolled_in() const {
  std::map<uint64_t, const StreamIngestor*> all;
  for (const auto& shard : stripes_) {
    for (const auto& [stripe, ingestor] : shard) all[stripe] = ingestor.get();
  }
  std::vector<PartitionId> ids;
  for (const auto& [stripe, ingestor] : all) {
    const std::vector<PartitionId>& part = ingestor->rolled_in();
    ids.insert(ids.end(), part.begin(), part.end());
  }
  return ids;
}

std::map<uint64_t, uint64_t> ParallelIngestor::next_sequences() const {
  std::map<uint64_t, uint64_t> sequences;
  for (const auto& shard : stripes_) {
    for (const auto& [stripe, ingestor] : shard) {
      sequences[stripe] = ingestor->next_sequence();
    }
  }
  return sequences;
}

Result<std::unique_ptr<ParallelIngestor>> ParallelIngestor::Resume(
    Warehouse* warehouse, DatasetId dataset,
    PartitionerFactory partitioner_factory, ParallelIngestOptions options) {
  if (warehouse == nullptr) {
    return Status::InvalidArgument("null warehouse");
  }
  // A resumable run is by definition a checkpointed one; stripes first
  // contacted after the resume must checkpoint too.
  options.enable_checkpoints = true;
  auto ingestor = std::unique_ptr<ParallelIngestor>(new ParallelIngestor(
      warehouse, std::move(dataset), std::move(partitioner_factory),
      std::move(options), DeferStart{}));

  SAMPWH_ASSIGN_OR_RETURN(std::vector<DatasetId> keys,
                          warehouse->ListIngestCheckpoints());
  const std::string prefix = ingestor->dataset_ + "#s";
  size_t resumed = 0;
  for (const std::string& key : keys) {
    if (key.size() <= prefix.size() ||
        key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    uint64_t stripe = 0;
    bool numeric = true;
    for (size_t i = prefix.size(); i < key.size(); ++i) {
      if (key[i] < '0' || key[i] > '9') {
        numeric = false;
        break;
      }
      stripe = stripe * 10 + static_cast<uint64_t>(key[i] - '0');
    }
    if (!numeric) continue;
    // Ownership is re-derived from the hash — the shard count may differ
    // from the interrupted run's without disturbing any stripe's stream.
    const size_t shard = ingestor->router_.ShardFor(stripe);
    SAMPWH_ASSIGN_OR_RETURN(
        std::unique_ptr<StreamIngestor> resumed_stripe,
        StreamIngestor::Resume(warehouse, ingestor->dataset_,
                               ingestor->partitioner_factory_
                                   ? ingestor->partitioner_factory_(stripe)
                                   : nullptr,
                               ingestor->options_.checkpoint_policy, key,
                               ingestor->ckpt_writer_.get()));
    ingestor->stripes_[shard].emplace(stripe, std::move(resumed_stripe));
    ++resumed;
  }
  if (resumed == 0) {
    return Status::NotFound("no stripe checkpoints for dataset " +
                            ingestor->dataset_);
  }
  ingestor->StartThreads();
  return ingestor;
}

}  // namespace sampwh
