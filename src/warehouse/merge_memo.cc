#include "src/warehouse/merge_memo.h"

#include <algorithm>
#include <utility>

namespace sampwh {

namespace {

constexpr uint64_t kEntryOverheadBytes = 160;

// FNV-1a over a byte range.
uint64_t Fnv1a(uint64_t h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

}  // namespace

MergeMemo::MergeMemo(size_t num_shards, uint64_t byte_budget)
    : cache_(num_shards, byte_budget) {}

uint64_t MergeMemo::CurrentEpoch(const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  const auto it = epochs_.find(dataset);
  return it != epochs_.end() ? it->second : 0;
}

std::string MergeMemo::KeyFor(const DatasetId& dataset,
                              std::span<const PartitionId> ids,
                              uint64_t options_fingerprint, uint64_t epoch) {
  std::string key;
  key.reserve(dataset.size() + 1 + 2 * sizeof(uint64_t) +
              ids.size() * sizeof(PartitionId));
  key.append(dataset);
  key.push_back('\0');
  key.append(reinterpret_cast<const char*>(&options_fingerprint),
             sizeof(options_fingerprint));
  key.append(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  key.append(reinterpret_cast<const char*>(ids.data()),
             ids.size_bytes());
  return key;
}

uint64_t MergeMemo::NodeStream(const DatasetId& dataset,
                               std::span<const PartitionId> ids,
                               uint64_t options_fingerprint) {
  uint64_t h = Fnv1a(kFnvOffset, dataset.data(), dataset.size());
  h = Fnv1a(h, &options_fingerprint, sizeof(options_fingerprint));
  h = Fnv1a(h, ids.data(), ids.size_bytes());
  return h;
}

Pcg64 MergeMemo::NodeRng(uint64_t warehouse_seed, const DatasetId& dataset,
                         std::span<const PartitionId> ids,
                         uint64_t options_fingerprint) {
  return Pcg64(warehouse_seed ^ 0x4D454D4FULL,
               NodeStream(dataset, ids, options_fingerprint));
}

std::shared_ptr<const PartitionSample> MergeMemo::Lookup(
    const DatasetId& dataset, std::span<const PartitionId> ids,
    uint64_t options_fingerprint, uint64_t epoch) {
  std::shared_ptr<const MemoNode> node =
      cache_.Lookup(KeyFor(dataset, ids, options_fingerprint, epoch));
  if (node == nullptr) return nullptr;
  // Aliasing pointer: shares ownership of the node, points at its sample.
  return std::shared_ptr<const PartitionSample>(node, &node->sample);
}

void MergeMemo::Insert(const DatasetId& dataset,
                       std::span<const PartitionId> ids,
                       uint64_t options_fingerprint, uint64_t epoch,
                       PartitionSample sample) {
  auto node = std::make_shared<MemoNode>();
  node->sample = std::move(sample);
  node->dataset = dataset;
  node->members.assign(ids.begin(), ids.end());
  const uint64_t charge = node->sample.footprint_bytes() + dataset.size() +
                          ids.size_bytes() + kEntryOverheadBytes;
  cache_.Insert(KeyFor(dataset, ids, options_fingerprint, epoch),
                std::move(node), charge);
}

size_t MergeMemo::InvalidatePartition(const DatasetId& dataset,
                                      PartitionId partition) {
  return cache_.EraseIf(
      [&dataset, partition](const std::string&, const MemoNode& node) {
        return node.dataset == dataset &&
               std::binary_search(node.members.begin(), node.members.end(),
                                  partition);
      });
}

void MergeMemo::InvalidateDataset(const DatasetId& dataset) {
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    ++epochs_[dataset];
  }
  cache_.EraseIf([&dataset](const std::string&, const MemoNode& node) {
    return node.dataset == dataset;
  });
}

void MergeMemo::Clear() { cache_.Clear(); }

CacheStats MergeMemo::Stats() const { return cache_.Stats(); }

}  // namespace sampwh
