// Dictionary encoding between arbitrary byte-string tokens and the 64-bit
// Value codes the samplers operate on — the column-store device that lets
// the warehouse sample string-valued data sets (XML leaf instances, text
// columns) without teaching the core algorithms about variable-length
// payloads. Codes are assigned densely in first-seen order.

#ifndef SAMPWH_WAREHOUSE_DICTIONARY_H_
#define SAMPWH_WAREHOUSE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace sampwh {

class ValueDictionary {
 public:
  ValueDictionary() = default;

  /// Returns the code for `token`, assigning the next free code on first
  /// sight.
  Value Encode(std::string_view token);

  /// Returns the code for `token` without inserting, or NotFound.
  Result<Value> Lookup(std::string_view token) const;

  /// Inverse mapping; OutOfRange for unknown codes.
  Result<std::string> Decode(Value code) const;

  uint64_t size() const { return tokens_.size(); }

  void SerializeTo(BinaryWriter* writer) const;
  static Result<ValueDictionary> DeserializeFrom(BinaryReader* reader);

 private:
  std::unordered_map<std::string, Value> codes_;
  std::vector<std::string> tokens_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_DICTIONARY_H_
