#include "src/warehouse/sample_cache.h"

#include <utility>

namespace sampwh {

namespace {

// Fixed per-entry overhead charged on top of the sample's histogram
// footprint: key, LRU node and index bookkeeping.
constexpr uint64_t kEntryOverheadBytes = 128;

}  // namespace

SampleCache::SampleCache(size_t num_shards, uint64_t byte_budget)
    : cache_(num_shards, byte_budget) {}

uint64_t SampleCache::CurrentEpoch(const DatasetId& dataset) const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  const auto it = epochs_.find(dataset);
  return it != epochs_.end() ? it->second : 0;
}

std::shared_ptr<const PartitionSample> SampleCache::Lookup(
    const DatasetId& dataset, uint64_t epoch, PartitionId partition) {
  return cache_.Lookup(EpochKey{dataset, epoch, partition});
}

std::shared_ptr<const PartitionSample> SampleCache::Peek(
    const DatasetId& dataset, uint64_t epoch, PartitionId partition) const {
  return cache_.Peek(EpochKey{dataset, epoch, partition});
}

void SampleCache::Insert(const DatasetId& dataset, uint64_t epoch,
                         PartitionId partition,
                         std::shared_ptr<const PartitionSample> sample) {
  const uint64_t charge =
      sample->footprint_bytes() + dataset.size() + kEntryOverheadBytes;
  cache_.Insert(EpochKey{dataset, epoch, partition}, std::move(sample),
                charge);
}

void SampleCache::Invalidate(const DatasetId& dataset, PartitionId partition) {
  cache_.Erase(EpochKey{dataset, CurrentEpoch(dataset), partition});
}

void SampleCache::InvalidateDataset(const DatasetId& dataset) {
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    ++epochs_[dataset];
  }
  cache_.EraseIf([&dataset](const EpochKey& key, const PartitionSample&) {
    return key.dataset == dataset;
  });
}

void SampleCache::Clear() { cache_.Clear(); }

CacheStats SampleCache::Stats() const { return cache_.Stats(); }

}  // namespace sampwh
