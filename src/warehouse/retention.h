// Retention policies: decide which partitions to roll out as the paper's
// §2 scenario slides its window ("as new daily samples are rolled in and
// old daily samples are rolled out"). Policies compute candidates from
// catalog metadata; the warehouse applies them.

#ifndef SAMPWH_WAREHOUSE_RETENTION_H_
#define SAMPWH_WAREHOUSE_RETENTION_H_

#include <cstdint>
#include <vector>

#include "src/warehouse/catalog.h"
#include "src/warehouse/ids.h"
#include "src/util/status.h"

namespace sampwh {

struct RetentionPolicy {
  /// Roll out partitions whose max_timestamp < now - keep_window_ticks.
  /// 0 disables the time criterion.
  uint64_t keep_window_ticks = 0;
  /// Keep at most this many newest partitions (by id); 0 disables.
  uint64_t keep_last_partitions = 0;
};

/// Partitions of `partitions` that the policy would roll out at time
/// `now`. A partition is a candidate when ANY enabled criterion expires it.
std::vector<PartitionId> RetentionCandidates(
    const std::vector<PartitionInfo>& partitions,
    const RetentionPolicy& policy, uint64_t now);

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_RETENTION_H_
