#include "src/warehouse/splitter.h"

#include "src/util/logging.h"

namespace sampwh {

namespace {
// Fibonacci-style value hash; avalanche quality is plenty for routing.
uint64_t HashValue(Value v) {
  uint64_t x = static_cast<uint64_t>(v);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

StreamSplitter::StreamSplitter(size_t num_workers, SplitPolicy policy)
    : num_workers_(num_workers), policy_(policy) {
  SAMPWH_CHECK(num_workers >= 1);
}

size_t StreamSplitter::Route(Value v) {
  switch (policy_) {
    case SplitPolicy::kHash:
      return static_cast<size_t>(HashValue(v) % num_workers_);
    case SplitPolicy::kRoundRobin:
    default: {
      const size_t worker = next_;
      next_ = (next_ + 1) % num_workers_;
      return worker;
    }
  }
}

}  // namespace sampwh
