// MergeMemo: a sharded LRU cache of interior merge-tree nodes. A union
// query over partitions {p1..pn} merges pairwise up a balanced tree; every
// interior node is a uniform sample of the union of a contiguous range of
// the canonically sorted partition-id set. Repeated or overlapping union
// queries (a rolling window slides by one day but shares most partitions)
// rebuild identical subtrees from scratch — this cache memoizes them.
//
// Keying. A node is identified by (dataset, canonical sorted partition-id
// range, MergeOptions fingerprint, epoch). The node's RNG stream is derived
// from the same identity (NodeStream), never from query history, so a
// memoized node is bit-identical to what recomputation would produce: the
// cache changes latency, never sampling semantics. The price is that
// repeated identical queries return the identical realization — callers
// needing independent randomness per query set
// MergeOptions::disable_memoization.
//
// Invalidation. Roll-out / retention expiry of a partition eagerly evicts
// every memoized node containing it (the member set is stored per entry).
// Dataset drops bump the dataset's epoch — generation-based wholesale
// invalidation, O(1) — and purge residual nodes for their bytes. Stale
// nodes racing an eviction are unreachable: their key names a rolled-out
// partition, and every query validates the catalog before merging.

#ifndef SAMPWH_WAREHOUSE_MERGE_MEMO_H_
#define SAMPWH_WAREHOUSE_MERGE_MEMO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/sample.h"
#include "src/util/random.h"
#include "src/util/sharded_cache.h"
#include "src/warehouse/ids.h"

namespace sampwh {

class MergeMemo {
 public:
  MergeMemo(size_t num_shards, uint64_t byte_budget);

  /// The current epoch of `dataset`; resolve it once per query, before any
  /// node lookup, and pass it to every Lookup/Insert of that query.
  uint64_t CurrentEpoch(const DatasetId& dataset) const;

  /// The memoized merged sample of the node covering `ids` (canonically
  /// sorted), or nullptr on miss / stale epoch.
  std::shared_ptr<const PartitionSample> Lookup(
      const DatasetId& dataset, std::span<const PartitionId> ids,
      uint64_t options_fingerprint, uint64_t epoch);

  /// Memoizes a computed node.
  void Insert(const DatasetId& dataset, std::span<const PartitionId> ids,
              uint64_t options_fingerprint, uint64_t epoch,
              PartitionSample sample);

  /// Evicts every memoized node whose member set contains `partition`
  /// (roll-out, retention expiry). Nodes over sibling partitions survive —
  /// that is what makes rolling-window queries reuse their shared
  /// subtrees. Returns the number of nodes evicted.
  size_t InvalidatePartition(const DatasetId& dataset, PartitionId partition);

  /// Generation-based wholesale invalidation of one dataset (drop): bumps
  /// the epoch so every outstanding node of the dataset is stale, then
  /// purges them to release bytes.
  void InvalidateDataset(const DatasetId& dataset);

  /// Drops all nodes.
  void Clear();

  CacheStats Stats() const;
  uint64_t byte_budget() const { return cache_.byte_budget(); }

  /// Deterministic RNG stream id for the merge node over `ids`: a hash of
  /// (dataset, ids, options fingerprint). Identical node identity across
  /// queries — and across cold/warm runs — selects the identical stream,
  /// which is what makes memoized and recomputed nodes bit-identical.
  static uint64_t NodeStream(const DatasetId& dataset,
                             std::span<const PartitionId> ids,
                             uint64_t options_fingerprint);

  /// The RNG a merge node over `ids` draws from in a warehouse seeded with
  /// `warehouse_seed`. This is the whole distributed-exactness contract: any
  /// process that computes the node — the single-node memoized merge tree, a
  /// shard evaluating a pushed-down subtree, or a coordinator joining shard
  /// results — derives the identical stream from the node's identity, so
  /// the merged bits are independent of where the node was computed.
  static Pcg64 NodeRng(uint64_t warehouse_seed, const DatasetId& dataset,
                       std::span<const PartitionId> ids,
                       uint64_t options_fingerprint);

 private:
  struct MemoNode {
    PartitionSample sample;
    DatasetId dataset;
    std::vector<PartitionId> members;  // sorted
  };

  static std::string KeyFor(const DatasetId& dataset,
                            std::span<const PartitionId> ids,
                            uint64_t options_fingerprint, uint64_t epoch);

  mutable std::mutex epoch_mu_;
  std::unordered_map<DatasetId, uint64_t> epochs_;
  ShardedLruCache<std::string, MemoNode> cache_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_MERGE_MEMO_H_
