#include "src/warehouse/retention.h"

#include <algorithm>

namespace sampwh {

std::vector<PartitionId> RetentionCandidates(
    const std::vector<PartitionInfo>& partitions,
    const RetentionPolicy& policy, uint64_t now) {
  std::vector<PartitionId> expired;

  if (policy.keep_window_ticks > 0 && now >= policy.keep_window_ticks) {
    const uint64_t cutoff = now - policy.keep_window_ticks;
    for (const PartitionInfo& p : partitions) {
      if (p.max_timestamp < cutoff) expired.push_back(p.id);
    }
  }

  if (policy.keep_last_partitions > 0 &&
      partitions.size() > policy.keep_last_partitions) {
    // Partitions are identified by monotonically assigned ids; "newest"
    // means largest id.
    std::vector<PartitionId> ids;
    ids.reserve(partitions.size());
    for (const PartitionInfo& p : partitions) ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    const size_t drop = ids.size() - policy.keep_last_partitions;
    expired.insert(expired.end(), ids.begin(),
                   ids.begin() + static_cast<long>(drop));
  }

  std::sort(expired.begin(), expired.end());
  expired.erase(std::unique(expired.begin(), expired.end()), expired.end());
  return expired;
}

}  // namespace sampwh
