// Shard-per-core parallel ingestion (the fix for BENCH_ingest's flat
// multi-worker scaling): N shard threads each own a disjoint set of
// stripes end-to-end — per-stripe sampler, PCG RNG stream, partitioner
// cursor and checkpoint key — and producers hand batches to shards over
// lock-free SPSC ring buffers, one ring per producer→shard pair, so the
// hot path takes no mutex anywhere.
//
// A *stripe* is the unit of ordered sub-stream ownership: all elements of
// a stripe flow through one single-threaded StreamIngestor, and the
// ShardRouter hash fixes which shard runs it. Each stripe's randomness is
// a pure function of (warehouse seed, dataset, stripe) — never of thread
// scheduling — so for a fixed assignment of elements to stripes the
// rolled-in samples are byte-identical regardless of how producer threads
// interleave, how many shards run, or when the run was interrupted and
// resumed. (Partition *ids* are allocated in arrival order and may differ
// between interleavings; the sample bytes rolled in per stripe do not.)
// Statistical exactness is inherited from the paper's merge theorems:
// every stripe rolls in uniform partition samples, and queries merge them
// through the same mergeable-sample machinery single-threaded ingest uses.
//
// Ordering contract: at most one producer may feed a given stripe at a
// time (producers own disjoint stripe sets, the natural shape when each
// producer reads one source split). Cross-stripe interleaving is
// unconstrained — that is what the determinism above makes irrelevant.

#ifndef SAMPWH_WAREHOUSE_PARALLEL_INGESTOR_H_
#define SAMPWH_WAREHOUSE_PARALLEL_INGESTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/util/shard_router.h"
#include "src/util/spsc_ring.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {

struct ParallelIngestOptions {
  /// Shard (worker thread) count; 0 uses hardware_concurrency.
  size_t shards = 0;
  /// Capacity of each producer→shard ring, in batches (rounded up to a
  /// power of two).
  size_t ring_capacity = 256;
  /// Upper bound on AddProducer() calls (the producer table is allocated
  /// up front so shard threads can scan it without locks).
  size_t max_producers = 16;
  /// Give every stripe ingestor a checkpoint cursor under
  /// "<dataset>#s<stripe>" and this cadence policy, making the whole
  /// parallel run crash-resumable via Resume(). Unless
  /// checkpoint_policy.synchronous, all stripes share ONE background
  /// CheckpointWriter, so per-stripe delta cadences cost one extra thread
  /// total, not one per stripe.
  bool enable_checkpoints = false;
  CheckpointPolicy checkpoint_policy;
  /// Capacity of each stripe's checkpoint ring into the shared writer.
  size_t checkpoint_ring_capacity = 32;
};

/// Per-shard work counters, for the scaling bench and for tests.
struct ShardIngestStats {
  uint64_t batches = 0;
  uint64_t elements = 0;
  /// Thread CPU time spent applying batches (CLOCK_THREAD_CPUTIME_ID),
  /// excluding ring-poll spinning — max over shards is the parallel
  /// makespan of the useful work.
  uint64_t busy_nanos = 0;
};

class ParallelIngestor {
 public:
  /// Builds the partitioner for one stripe's ingestor. Called once per
  /// stripe that receives data (and once per checkpointed stripe on
  /// Resume); may return nullptr for a single never-closing partition.
  using PartitionerFactory =
      std::function<std::unique_ptr<Partitioner>(uint64_t stripe)>;

  /// Starts the shard threads immediately. `warehouse` must outlive the
  /// ingestor; the dataset must exist.
  ParallelIngestor(Warehouse* warehouse, DatasetId dataset,
                   PartitionerFactory partitioner_factory,
                   ParallelIngestOptions options = {});

  /// Stops shard threads WITHOUT flushing open stripes — destruction is
  /// crash semantics; use Finish() for a clean shutdown. With checkpoints
  /// enabled, whatever was durably checkpointed is resumable.
  ~ParallelIngestor();

  /// A producer handle: the single-threaded side of one set of SPSC rings.
  /// Each handle may be driven by one thread at a time.
  class Producer {
   public:
    /// Routes one batch to the owning shard, blocking (spin+yield) while
    /// that ring is full. The batch extends `stripe` at its current
    /// watermark. Fails only after Finish().
    Status Append(uint64_t stripe, std::span<const Value> values,
                  uint64_t timestamp = 0);

    /// Sequence-addressed variant for exactly-once replay: `sequence` is
    /// the 0-based position of values[0] in the stripe's sub-stream.
    /// Duplicate/straddling batches are reconciled by the stripe's
    /// ingestor exactly as in StreamIngestor::AppendBatchAt.
    Status AppendAt(uint64_t stripe, uint64_t sequence,
                    std::span<const Value> values, uint64_t timestamp = 0);

    ~Producer();

   private:
    friend class ParallelIngestor;
    explicit Producer(ParallelIngestor* owner);

    Status Push(uint64_t stripe, uint64_t sequence,
                std::span<const Value> values, uint64_t timestamp);

    ParallelIngestor* owner_;
    /// One ring per shard; rings_[s] is consumed only by shard s.
    std::vector<std::unique_ptr<SpscRing<struct ShardBatch>>> rings_;
  };

  /// Registers a new producer (at most options.max_producers). The handle
  /// is owned by the ingestor and valid for its lifetime.
  Producer* AddProducer();

  /// Waits until every batch pushed so far has been applied by its shard.
  /// Callable only while all producers are quiescent (externally
  /// synchronized); shard threads keep running.
  Status Drain();

  /// Drains, stops and joins the shard threads, then flushes every stripe
  /// (closing open partitions in stripe order). Idempotent. After Finish
  /// the accessors below reflect the completed run.
  Status Finish();

  /// Partition ids rolled in, grouped by stripe in ascending stripe order
  /// (creation order within a stripe). Valid after Finish().
  std::vector<PartitionId> rolled_in() const;

  /// Each active stripe's replay watermark. Valid when quiescent.
  std::map<uint64_t, uint64_t> next_sequences() const;

  /// Per-shard work counters. Stable after Drain()/Finish().
  const std::vector<ShardIngestStats>& shard_stats() const { return stats_; }

  size_t num_shards() const { return router_.num_shards(); }

  /// Reopens a checkpointed parallel run: every "<dataset>#s<stripe>"
  /// checkpoint cursor is resumed into its owning shard (the router hash
  /// re-derives ownership — shard count may even change between runs),
  /// interrupted partition closes are reconciled per stripe, and the shard
  /// threads start. Feed each stripe from its next_sequences() watermark
  /// (or earlier) via Producer::AppendAt. NotFound when no stripe
  /// checkpoint exists.
  static Result<std::unique_ptr<ParallelIngestor>> Resume(
      Warehouse* warehouse, DatasetId dataset,
      PartitionerFactory partitioner_factory,
      ParallelIngestOptions options = {});

 private:
  struct DeferStart {};  // tag: build without launching shard threads

  ParallelIngestor(Warehouse* warehouse, DatasetId dataset,
                   PartitionerFactory partitioner_factory,
                   ParallelIngestOptions options, DeferStart);

  void StartThreads();
  void ShardMain(size_t shard);
  /// Applies one batch on shard `shard`, creating the stripe's ingestor on
  /// first contact.
  void ApplyBatch(size_t shard, struct ShardBatch& batch);
  StreamIngestor* StripeIngestor(size_t shard, uint64_t stripe);
  std::string CheckpointKeyFor(uint64_t stripe) const;

  Warehouse* warehouse_;
  DatasetId dataset_;
  PartitionerFactory partitioner_factory_;
  ParallelIngestOptions options_;
  ShardRouter router_;
  /// Stripe RNG base: seed ^ H(dataset) ^ salt; stripe k samples on
  /// Pcg64(seed_base_, k) — order-independent and resume-stable.
  uint64_t seed_base_;

  /// Shared background checkpoint writer for all stripes (asynchronous
  /// checkpoint mode only). Declared before stripes_ so it is destroyed
  /// AFTER them — stripe channels stay valid for the stripes' lifetime.
  std::unique_ptr<CheckpointWriter> ckpt_writer_;

  /// Producer table. Slots are filled front-to-back under producers_mu_;
  /// shard threads scan [0, producer_count_) lock-free — the vector is
  /// sized at construction and never reallocates.
  std::mutex producers_mu_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::atomic<size_t> producer_count_{0};

  /// Handoff accounting for Drain(): batches pushed per shard (producers,
  /// fetch_add) vs batches applied per shard (the shard thread, release).
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> pushed_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> applied_;

  /// Per-shard stripe ingestors, keyed by stripe; each map is touched only
  /// by its shard thread while threads run, by the caller after Finish().
  std::vector<std::map<uint64_t, std::unique_ptr<StreamIngestor>>> stripes_;
  std::vector<Status> shard_errors_;
  std::vector<ShardIngestStats> stats_;

  std::atomic<bool> stop_{false};
  bool finished_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_PARALLEL_INGESTOR_H_
