#include "src/warehouse/partitioner.h"

#include "src/util/logging.h"

namespace sampwh {

CountPartitioner::CountPartitioner(uint64_t max_elements)
    : max_elements_(max_elements) {
  SAMPWH_CHECK(max_elements >= 1);
}

bool CountPartitioner::ShouldCloseBefore(const PartitionProgress& progress,
                                         uint64_t next_timestamp) {
  (void)next_timestamp;
  return progress.elements >= max_elements_;
}

uint64_t CountPartitioner::MaxAppendable(
    const PartitionProgress& progress) const {
  return progress.elements >= max_elements_
             ? 0
             : max_elements_ - progress.elements;
}

TemporalPartitioner::TemporalPartitioner(uint64_t window_ticks)
    : window_ticks_(window_ticks) {
  SAMPWH_CHECK(window_ticks >= 1);
}

bool TemporalPartitioner::ShouldCloseBefore(
    const PartitionProgress& progress, uint64_t next_timestamp) {
  if (progress.elements == 0) return false;
  return next_timestamp >= progress.first_timestamp + window_ticks_;
}

RatioTriggerPartitioner::RatioTriggerPartitioner(double min_sampling_fraction,
                                                 uint64_t min_elements)
    : min_sampling_fraction_(min_sampling_fraction),
      min_elements_(min_elements) {
  SAMPWH_CHECK(min_sampling_fraction > 0.0 && min_sampling_fraction <= 1.0);
}

bool RatioTriggerPartitioner::ShouldCloseAfter(
    const PartitionProgress& progress) {
  if (progress.elements < min_elements_) return false;
  const double fraction = static_cast<double>(progress.sample_size) /
                          static_cast<double>(progress.elements);
  return fraction <= min_sampling_fraction_;
}

uint64_t RatioTriggerPartitioner::MaxAppendable(
    const PartitionProgress& progress) const {
  // Never re-check before min_elements_ is reached; past it, check every
  // granule so the batched trigger stays close to the element-wise one.
  if (progress.elements < min_elements_) {
    return min_elements_ - progress.elements;
  }
  return kBatchCheckGranule;
}

std::unique_ptr<Partitioner> MakeCountPartitioner(uint64_t max_elements) {
  return std::make_unique<CountPartitioner>(max_elements);
}

std::unique_ptr<Partitioner> MakeTemporalPartitioner(uint64_t window_ticks) {
  return std::make_unique<TemporalPartitioner>(window_ticks);
}

std::unique_ptr<Partitioner> MakeRatioTriggerPartitioner(
    double min_sampling_fraction, uint64_t min_elements) {
  return std::make_unique<RatioTriggerPartitioner>(min_sampling_fraction,
                                                   min_elements);
}

}  // namespace sampwh
