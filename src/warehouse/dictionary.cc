#include "src/warehouse/dictionary.h"

namespace sampwh {

Value ValueDictionary::Encode(std::string_view token) {
  const auto it = codes_.find(std::string(token));
  if (it != codes_.end()) return it->second;
  const Value code = static_cast<Value>(tokens_.size());
  tokens_.emplace_back(token);
  codes_.emplace(tokens_.back(), code);
  return code;
}

Result<Value> ValueDictionary::Lookup(std::string_view token) const {
  const auto it = codes_.find(std::string(token));
  if (it == codes_.end()) {
    return Status::NotFound("token not in dictionary");
  }
  return it->second;
}

Result<std::string> ValueDictionary::Decode(Value code) const {
  if (code < 0 || static_cast<uint64_t>(code) >= tokens_.size()) {
    return Status::OutOfRange("unknown dictionary code");
  }
  return tokens_[static_cast<size_t>(code)];
}

void ValueDictionary::SerializeTo(BinaryWriter* writer) const {
  writer->PutVarint64(tokens_.size());
  for (const std::string& token : tokens_) {
    writer->PutString(token);
  }
}

Result<ValueDictionary> ValueDictionary::DeserializeFrom(
    BinaryReader* reader) {
  uint64_t n;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&n));
  ValueDictionary dict;
  dict.tokens_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string token;
    SAMPWH_RETURN_IF_ERROR(reader->GetString(&token));
    if (dict.codes_.contains(token)) {
      return Status::Corruption("duplicate token in serialized dictionary");
    }
    dict.tokens_.push_back(std::move(token));
    dict.codes_.emplace(dict.tokens_.back(),
                        static_cast<Value>(dict.tokens_.size() - 1));
  }
  return dict;
}

}  // namespace sampwh
