// Persistence for partition samples. The sample warehouse keeps one
// serialized PartitionSample per (dataset, partition); roll-in writes it,
// roll-out deletes it, queries read subsets back for merging. Two backends:
// an in-memory map for tests and simulations, and a directory of one file
// per sample with atomic replace for durability.

#ifndef SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
#define SAMPWH_WAREHOUSE_SAMPLE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/sample.h"
#include "src/warehouse/ids.h"

namespace sampwh {

class SampleStore {
 public:
  virtual ~SampleStore() = default;

  /// Stores (replacing) the sample for `key`.
  virtual Status Put(const PartitionKey& key,
                     const PartitionSample& sample) = 0;

  /// Loads the sample for `key`; NotFound if absent.
  virtual Result<PartitionSample> Get(const PartitionKey& key) const = 0;

  /// Removes the sample for `key`; NotFound if absent.
  virtual Status Delete(const PartitionKey& key) = 0;

  /// All partition ids stored for `dataset`, ascending.
  virtual Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const = 0;
};

/// Map-backed store; thread-safe.
class InMemorySampleStore : public SampleStore {
 public:
  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;

  /// Total serialized footprint currently held (bytes of sample payloads);
  /// lets tests assert the warehouse-wide storage behavior.
  uint64_t TotalStoredBytes() const;

 private:
  mutable std::mutex mu_;
  std::map<PartitionKey, std::string> samples_;  // serialized form
};

/// One file per sample under `directory` (created if missing), written with
/// atomic replace; thread-safe.
class FileSampleStore : public SampleStore {
 public:
  static Result<std::unique_ptr<FileSampleStore>> Open(
      const std::string& directory);

  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;

 private:
  explicit FileSampleStore(std::string directory);

  std::string PathFor(const PartitionKey& key) const;

  mutable std::mutex mu_;
  std::string directory_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
