// Persistence for partition samples. The sample warehouse keeps one
// serialized PartitionSample per (dataset, partition); roll-in writes it,
// roll-out deletes it, queries read subsets back for merging. Two backends:
// an in-memory map for tests and simulations, and a directory of one file
// per sample with atomic replace for durability.
//
// Read-path concurrency: Get never holds a lock across deserialization, and
// the file backend stripes its locking per key, so concurrent Gets of
// different partitions do parallel IO. GetMany overlays deserialization
// across partitions on a caller-provided thread pool — the warehouse query
// path uses it to prefetch every partition of a union query at once.

#ifndef SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
#define SAMPWH_WAREHOUSE_SAMPLE_STORE_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/sample.h"
#include "src/util/thread_pool.h"
#include "src/warehouse/ids.h"

namespace sampwh {

class SampleStore {
 public:
  virtual ~SampleStore() = default;

  /// Stores (replacing) the sample for `key`.
  virtual Status Put(const PartitionKey& key,
                     const PartitionSample& sample) = 0;

  /// Loads the sample for `key`; NotFound if absent.
  virtual Result<PartitionSample> Get(const PartitionKey& key) const = 0;

  /// Loads the samples for `keys`, in order; fails on the first missing
  /// key. With a pool, fetches run as one task per key so file reads and
  /// deserialization overlap across partitions (both backends allow
  /// concurrent Gets of different keys). Must not be called from a task
  /// already running on `pool`.
  virtual Result<std::vector<PartitionSample>> GetMany(
      const std::vector<PartitionKey>& keys, ThreadPool* pool = nullptr) const;

  /// Removes the sample for `key`; NotFound if absent.
  virtual Status Delete(const PartitionKey& key) = 0;

  /// All partition ids stored for `dataset`, ascending.
  virtual Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const = 0;

  /// Total serialized footprint currently held (bytes of sample payloads;
  /// on-disk payload bytes for the file backend). Both backends report the
  /// same value for the same stored content, so footprint assertions run
  /// backend-agnostically.
  virtual uint64_t TotalStoredBytes() const = 0;
};

/// Map-backed store; thread-safe.
class InMemorySampleStore : public SampleStore {
 public:
  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;
  uint64_t TotalStoredBytes() const override;

 private:
  mutable std::mutex mu_;
  std::map<PartitionKey, std::string> samples_;  // serialized form
};

/// One file per sample under `directory` (created if missing), written with
/// atomic replace; thread-safe. Locking is striped per key: operations on
/// keys hashed to different stripes run fully concurrently, so a slow read
/// of one partition never blocks reads of others.
class FileSampleStore : public SampleStore {
 public:
  static Result<std::unique_ptr<FileSampleStore>> Open(
      const std::string& directory);

  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;
  uint64_t TotalStoredBytes() const override;

  /// Test-only fault-injection hook, invoked inside Get while the key's
  /// lock stripe is held (after validation, before the file read). A hook
  /// that blocks stalls exactly one stripe; the concurrency regression
  /// test uses a rendezvous hook to prove Gets of different stripes make
  /// progress simultaneously.
  void SetReadHookForTesting(std::function<void(const PartitionKey&)> hook);

  /// Which of the kLockStripes stripes `key` locks; lets tests pick keys
  /// guaranteed to use distinct stripes.
  static size_t StripeIndexForTesting(const PartitionKey& key);

 private:
  static constexpr size_t kLockStripes = 32;

  explicit FileSampleStore(std::string directory);

  std::string PathFor(const PartitionKey& key) const;
  std::mutex& StripeFor(const PartitionKey& key) const;

  mutable std::array<std::mutex, kLockStripes> stripes_;
  mutable std::mutex hook_mu_;
  std::function<void(const PartitionKey&)> read_hook_;
  std::string directory_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
