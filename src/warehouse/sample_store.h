// Persistence for partition samples. The sample warehouse keeps one
// serialized PartitionSample per (dataset, partition); roll-in writes it,
// roll-out deletes it, queries read subsets back for merging. Two backends:
// an in-memory map for tests and simulations, and a directory of one file
// per sample with atomic replace for durability.
//
// Read-path concurrency: Get never holds a lock across deserialization, and
// the file backend stripes its locking per key, so concurrent Gets of
// different partitions do parallel IO. GetMany overlays deserialization
// across partitions on a caller-provided thread pool — the warehouse query
// path uses it to prefetch every partition of a union query at once.
//
// Robustness: samples are persisted in the versioned, CRC-framed envelope
// of util/serialization (format v2; bare v1 payloads stay readable), so a
// torn, truncated or bit-rotted sample is detected on read — Corruption is
// surfaced and the file backend quarantines the damaged file (renamed
// aside, never silently deserialized). Transient IO faults are retried with
// bounded exponential backoff. Recover() reconciles persisted state after a
// crash: orphan temp files are dropped, unreadable samples quarantined, and
// expected-but-missing partitions reported. Both backends consult an
// optional FaultInjector at named sites so every failure path is testable
// deterministically.

#ifndef SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
#define SAMPWH_WAREHOUSE_SAMPLE_STORE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/sample.h"
#include "src/testing/fault_injector.h"
#include "src/util/thread_pool.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/ids.h"

namespace sampwh {

/// What a Recover() scan found and did. File names are basenames within
/// the store directory (the in-memory backend synthesizes "dataset.id").
struct RecoveryReport {
  /// Sample files (or blobs) whose content was examined.
  uint64_t scanned = 0;
  /// Unreadable / corrupt samples renamed aside (file backend appends
  /// ".quarantine") or dropped (in-memory backend).
  std::vector<std::string> quarantined;
  /// Orphan "*.tmp" files from writes that crashed before their rename.
  std::vector<std::string> removed_temps;
  /// Keys from `expected` whose samples are absent or were quarantined.
  std::vector<PartitionKey> missing_partitions;
  /// Ingest-checkpoint generations that failed verification and were
  /// quarantined (file backend) or dropped (in-memory backend).
  std::vector<std::string> quarantined_checkpoints;
  /// Checkpoint WALs whose tail failed CRC framing or deep record
  /// verification and was truncated back to the last good record — the
  /// expected artifact of a crash mid-append.
  std::vector<std::string> truncated_wal_tails;
  /// Checkpoint WALs with no surviving snapshot generation (quarantined or
  /// dropped whole — their records cannot anchor to anything).
  std::vector<std::string> orphaned_wals;
  /// Filled by Warehouse::RestoreWithRecovery: datasets that had stored
  /// checkpoints but no longer exist in the catalog (checkpoints deleted).
  std::vector<DatasetId> stale_checkpoints;
};

/// Cumulative reliability counters for one store instance, covering samples
/// and ingest checkpoints across both backends.
struct StoreStats {
  /// Backoff-then-retry cycles taken after a transient IO fault.
  uint64_t retries_attempted = 0;
  /// Operations that failed even after exhausting the retry budget.
  uint64_t retries_exhausted = 0;
  /// Corrupt samples or checkpoints moved aside (or dropped in memory).
  uint64_t quarantines = 0;
  /// Orphan temp files removed by Recover().
  uint64_t recovered_temps = 0;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_restored = 0;
  /// Group-committed delta appends to checkpoint WALs, and the total
  /// records those groups carried.
  uint64_t wal_appends = 0;
  uint64_t wal_records_appended = 0;
  /// WAL tails truncated by Recover() after a torn or corrupt record.
  uint64_t wal_tails_truncated = 0;
};

class SampleStore {
 public:
  /// Bounded retry for transient IO faults: `max_attempts` tries total,
  /// exponential backoff starting at `initial_backoff` between them. Only
  /// IOError is retried — NotFound and Corruption never are.
  struct RetryPolicy {
    int max_attempts = 3;
    std::chrono::microseconds initial_backoff{200};
  };

  virtual ~SampleStore() = default;

  /// Stores (replacing) the sample for `key`.
  virtual Status Put(const PartitionKey& key,
                     const PartitionSample& sample) = 0;

  /// Loads the sample for `key`; NotFound if absent, Corruption if the
  /// stored bytes fail envelope verification or decoding.
  virtual Result<PartitionSample> Get(const PartitionKey& key) const = 0;

  /// Loads the samples for `keys`, in order; fails on the first missing
  /// key. With a pool, fetches run as one task per key so file reads and
  /// deserialization overlap across partitions (both backends allow
  /// concurrent Gets of different keys). Must not be called from a task
  /// already running on `pool`. Errors propagate whole: a failed fetch
  /// fails the call, never yields a partial vector.
  virtual Result<std::vector<PartitionSample>> GetMany(
      const std::vector<PartitionKey>& keys, ThreadPool* pool = nullptr) const;

  /// Digest of the stored sample's logical content for `key`: a CRC32 of
  /// the serialized payload (envelope stripped) folded with its length.
  /// Replicas holding the same sample agree on this value regardless of
  /// backend, so cross-node anti-entropy comparison never ships sample
  /// bytes. NotFound if absent; Corruption if the stored bytes fail
  /// envelope verification (the file backend quarantines the damaged file
  /// exactly as Get would, so a corrupt replica reads as missing on the
  /// next scan).
  virtual Result<uint64_t> ContentDigest(const PartitionKey& key) const = 0;

  /// Removes the sample for `key`; NotFound if absent.
  virtual Status Delete(const PartitionKey& key) = 0;

  /// All partition ids stored for `dataset`, ascending.
  virtual Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const = 0;

  /// Total serialized footprint currently held (enveloped bytes; on-disk
  /// bytes for the file backend). Both backends report the same value for
  /// the same stored content, so footprint assertions run
  /// backend-agnostically. Quarantined files and orphan temps don't count.
  virtual uint64_t TotalStoredBytes() const = 0;

  /// Startup reconciliation after a crash. Scans stored samples, drops
  /// leftovers of interrupted writes, quarantines anything unreadable, and
  /// reports which of `expected` (typically the catalog's partition set)
  /// cannot be served. Call before serving traffic; not safe concurrently
  /// with Put/Get/Delete.
  virtual Result<RecoveryReport> Recover(
      const std::vector<PartitionKey>& expected = {});

  // --- Ingest checkpoints -------------------------------------------------
  //
  // One logical checkpoint per dataset, stored generationally (the newest
  // two generations are kept) so a write torn mid-checkpoint never loses
  // the previous good one. `payload` is an IngestCheckpoint record; the
  // store frames it in the CRC'd SWV2 envelope like every sample.

  /// Persists a new checkpoint generation for `dataset` and prunes old
  /// generations beyond the newest two. Consults the injector at
  /// kFaultSiteCheckpointWrite with the same semantics as sample writes.
  virtual Status PutCheckpoint(const DatasetId& dataset,
                               std::string_view payload) = 0;

  /// The newest checkpoint payload for `dataset` that passes envelope
  /// verification. A corrupt newest generation is quarantined and the
  /// previous one served instead; NotFound when no valid generation
  /// remains. Consults kFaultSiteCheckpointRead.
  virtual Result<std::string> GetCheckpoint(const DatasetId& dataset)
      const = 0;

  /// Removes every checkpoint generation for `dataset`; NotFound when none
  /// exist.
  virtual Status DeleteCheckpoint(const DatasetId& dataset) = 0;

  /// Datasets that currently have at least one stored checkpoint
  /// generation, ascending.
  virtual Result<std::vector<DatasetId>> ListCheckpoints() const = 0;

  // --- Checkpoint delta journal -------------------------------------------
  //
  // Each snapshot generation owns a write-ahead log of CRC-framed delta
  // records ("<key>.<generation>.wal" in the file backend). The background
  // checkpoint writer appends groups of records between snapshots; resume
  // reads the newest verifiable snapshot plus its WAL back as one chain.
  // Rotation: PutCheckpoint starts a fresh (empty) WAL for the generation
  // it writes, and pruning an old generation removes its WAL with it.

  /// Appends `records` (each one CheckpointDeltaRecord payload) to the WAL
  /// of `key`'s newest snapshot generation, CRC-framed per record, in one
  /// group-committed write. FailedPrecondition when no snapshot generation
  /// exists. Consults kFaultSiteWalAppend; failures are NOT retried — a
  /// failed append may have left a torn tail, so the caller must rotate to
  /// a fresh snapshot instead of appending past the damage.
  virtual Status AppendCheckpointDeltas(
      const DatasetId& key, const std::vector<std::string>& records) = 0;

  /// The newest verifiable snapshot for `key` plus its WAL records (CRC
  /// framing checked; a torn tail is flagged and skipped). A corrupt newest
  /// snapshot is quarantined together with its WAL and the previous
  /// generation served. NotFound when no valid generation remains.
  virtual Result<CheckpointChain> GetCheckpointChain(
      const DatasetId& key) const = 0;

  /// Arms fault injection for this store (nullptr disarms). The injector
  /// is consulted at the kFaultSite* sites in fault_injector.h.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector);

  void SetRetryPolicy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;

  /// Snapshot of the cumulative reliability counters.
  StoreStats GetStoreStats() const;

 protected:
  std::shared_ptr<FaultInjector> fault_injector() const;

  // Counter hooks for subclasses (thread-safe, callable from const paths).
  void NoteRetryAttempted() const { stats_retries_attempted_.fetch_add(1); }
  void NoteRetryExhausted() const { stats_retries_exhausted_.fetch_add(1); }
  void NoteQuarantine() const { stats_quarantines_.fetch_add(1); }
  void NoteRecoveredTemp() const { stats_recovered_temps_.fetch_add(1); }
  void NoteCheckpointWritten() const {
    stats_checkpoints_written_.fetch_add(1);
  }
  void NoteCheckpointRestored() const {
    stats_checkpoints_restored_.fetch_add(1);
  }
  void NoteWalAppend(uint64_t records) const {
    stats_wal_appends_.fetch_add(1);
    stats_wal_records_appended_.fetch_add(records);
  }
  void NoteWalTailTruncated() const { stats_wal_tails_truncated_.fetch_add(1); }

 private:
  mutable std::mutex config_mu_;
  std::shared_ptr<FaultInjector> injector_;
  RetryPolicy retry_policy_;

  mutable std::atomic<uint64_t> stats_retries_attempted_{0};
  mutable std::atomic<uint64_t> stats_retries_exhausted_{0};
  mutable std::atomic<uint64_t> stats_quarantines_{0};
  mutable std::atomic<uint64_t> stats_recovered_temps_{0};
  mutable std::atomic<uint64_t> stats_checkpoints_written_{0};
  mutable std::atomic<uint64_t> stats_checkpoints_restored_{0};
  mutable std::atomic<uint64_t> stats_wal_appends_{0};
  mutable std::atomic<uint64_t> stats_wal_records_appended_{0};
  mutable std::atomic<uint64_t> stats_wal_tails_truncated_{0};
};

/// Map-backed store; thread-safe.
class InMemorySampleStore : public SampleStore {
 public:
  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Result<uint64_t> ContentDigest(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;
  uint64_t TotalStoredBytes() const override;

  /// Validates every stored blob (dropping corrupt ones — e.g. a torn
  /// injected write) and reports expected keys that are absent.
  Result<RecoveryReport> Recover(
      const std::vector<PartitionKey>& expected = {}) override;

  Status PutCheckpoint(const DatasetId& dataset,
                       std::string_view payload) override;
  Result<std::string> GetCheckpoint(const DatasetId& dataset) const override;
  Status DeleteCheckpoint(const DatasetId& dataset) override;
  Result<std::vector<DatasetId>> ListCheckpoints() const override;
  Status AppendCheckpointDeltas(
      const DatasetId& key, const std::vector<std::string>& records) override;
  Result<CheckpointChain> GetCheckpointChain(
      const DatasetId& key) const override;

 private:
  /// Drops the WAL owned by one generation (e.g. after its snapshot was
  /// diagnosed corrupt). Caller holds mu_.
  void DropWalLocked(const DatasetId& dataset, uint64_t generation) const;

  mutable std::mutex mu_;
  std::map<PartitionKey, std::string> samples_;  // enveloped serialized form
  // generation -> enveloped checkpoint bytes; mutable so a const Get can
  // drop a generation it diagnosed as corrupt (the in-memory analogue of
  // quarantining a file aside).
  mutable std::map<DatasetId, std::map<uint64_t, std::string>> checkpoints_;
  // generation -> raw WAL bytes (the same CRC-per-record framing the file
  // backend appends), so torn-append injection and tail parsing behave
  // identically across backends.
  mutable std::map<DatasetId, std::map<uint64_t, std::string>> wals_;
};

/// One file per sample under `directory` (created if missing), written with
/// atomic replace; thread-safe. Locking is striped per key: operations on
/// keys hashed to different stripes run fully concurrently, so a slow read
/// of one partition never blocks reads of others. A Get that detects a
/// corrupt file quarantines it (renames to "<name>.quarantine") so the
/// damage is preserved for inspection but never re-served; transient IO
/// errors are retried per the store's RetryPolicy.
class FileSampleStore : public SampleStore {
 public:
  static Result<std::unique_ptr<FileSampleStore>> Open(
      const std::string& directory);

  Status Put(const PartitionKey& key, const PartitionSample& sample) override;
  Result<PartitionSample> Get(const PartitionKey& key) const override;
  Result<uint64_t> ContentDigest(const PartitionKey& key) const override;
  Status Delete(const PartitionKey& key) override;
  Result<std::vector<PartitionId>> List(
      const DatasetId& dataset) const override;
  uint64_t TotalStoredBytes() const override;

  /// Directory scan: removes orphan "*.tmp" files, quarantines sample
  /// files that fail envelope/decode/Validate and checkpoint files that
  /// fail full structural verification, reports expected keys that are no
  /// longer servable. Quarantine renames are collision-free: a name whose
  /// plain ".quarantine" sibling already exists (e.g. from a previous
  /// recovery pass) gets a ".quarantine.<n>" suffix instead of
  /// overwriting the preserved evidence.
  Result<RecoveryReport> Recover(
      const std::vector<PartitionKey>& expected = {}) override;

  Status PutCheckpoint(const DatasetId& dataset,
                       std::string_view payload) override;
  Result<std::string> GetCheckpoint(const DatasetId& dataset) const override;
  Status DeleteCheckpoint(const DatasetId& dataset) override;
  Result<std::vector<DatasetId>> ListCheckpoints() const override;
  Status AppendCheckpointDeltas(
      const DatasetId& key, const std::vector<std::string>& records) override;
  Result<CheckpointChain> GetCheckpointChain(
      const DatasetId& key) const override;

  /// Test-only fault-injection hook, invoked inside Get while the key's
  /// lock stripe is held (after validation, before the file read). A hook
  /// that blocks stalls exactly one stripe; the concurrency regression
  /// test uses a rendezvous hook to prove Gets of different stripes make
  /// progress simultaneously.
  void SetReadHookForTesting(std::function<void(const PartitionKey&)> hook);

  /// Which of the kLockStripes stripes `key` locks; lets tests pick keys
  /// guaranteed to use distinct stripes.
  static size_t StripeIndexForTesting(const PartitionKey& key);

 private:
  static constexpr size_t kLockStripes = 32;

  explicit FileSampleStore(std::string directory);

  std::string PathFor(const PartitionKey& key) const;
  std::string CheckpointPathFor(const DatasetId& dataset,
                                uint64_t generation) const;
  std::string WalPathFor(const DatasetId& dataset, uint64_t generation) const;
  std::mutex& StripeFor(const PartitionKey& key) const;
  /// Write with injected-fault simulation and transient-fault retry;
  /// `site` selects the injection site (sample put vs checkpoint write).
  Status WriteFileWithFaults(const std::string& site, const std::string& path,
                             const std::string& bytes);
  /// Renames `path` aside (best effort) after a corruption diagnosis.
  void QuarantineFile(const PartitionKey& key, const std::string& path) const;
  /// Same, for checkpoint files; caller holds ckpt_mu_.
  void QuarantineCheckpointPath(const std::string& path) const;
  /// Checkpoint generations stored for `dataset`, ascending. Caller holds
  /// ckpt_mu_ (or is a lock-free scan like ListCheckpoints).
  std::vector<uint64_t> CheckpointGenerations(const DatasetId& dataset) const;

  mutable std::array<std::mutex, kLockStripes> stripes_;
  mutable std::mutex hook_mu_;
  std::function<void(const PartitionKey&)> read_hook_;
  // Serializes checkpoint generation bookkeeping (allocate/prune/fallback);
  // independent of the sample stripes so checkpoint traffic never blocks
  // sample reads.
  mutable std::mutex ckpt_mu_;
  // Newest known generation per checkpoint key, so a WAL append costs one
  // file append instead of a directory scan. Maintained under ckpt_mu_ by
  // every generation mutation; an absent entry falls back to a scan, and
  // any failure path invalidates (erases) rather than guesses.
  mutable std::map<DatasetId, uint64_t> newest_generation_;
  std::string directory_;
};

/// Collision-free quarantine destination for `path`: "<path>.quarantine"
/// when unclaimed, otherwise "<path>.quarantine.<n>" for the smallest free
/// n — a repeated recovery pass never overwrites previously preserved
/// evidence. Exposed for tests.
std::string QuarantineDestination(const std::string& path);

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_SAMPLE_STORE_H_
