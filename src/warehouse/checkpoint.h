// Ingest checkpoints: the durable record a StreamIngestor persists so that
// ingestion can be killed at any instant and resumed with exactly-once
// semantics over an at-least-once delivery stream.
//
// A checkpoint captures everything the ingestor needs to continue
// bit-identically:
//
//   * the replay watermark `next_sequence` — every element with a sequence
//     number below it has been applied; re-delivered batches at or below
//     the watermark are acknowledged and skipped on resume,
//   * the ingestor's own RNG engine and partition counter (per-partition
//     sampler streams are forked from these, never from the warehouse RNG,
//     so they are replayable),
//   * the open partition's progress and the mid-stream sampler state
//     (an AnySampler::SaveState record), and
//   * optionally a finalized-but-not-yet-rolled-in partition sample
//     (PendingRollIn) bridging the close protocol: checkpoint A is written
//     with the pending sample BEFORE RollIn, checkpoint B after. A crash
//     between the two is reconciled on resume via `id_lower_bound`: if the
//     store already holds a partition with id >= id_lower_bound the roll-in
//     completed and the pending sample is adopted; otherwise it is rolled
//     in again (the manifest-restored id allocator hands out the same id,
//     so the retry overwrites any orphan bytes identically).
//
// The serialized record rides inside the CRC-framed SWV2 envelope like
// every other persisted record (leading fixed32 kCheckpointRecordMagic
// identifies it); SampleStore keeps the newest two generations per dataset
// so a torn checkpoint write falls back to the previous one.

#ifndef SAMPWH_WAREHOUSE_CHECKPOINT_H_
#define SAMPWH_WAREHOUSE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"
#include "src/warehouse/ids.h"
#include "src/warehouse/partitioner.h"

namespace sampwh {

/// A partition that was finalized but whose roll-in had not been confirmed
/// when the checkpoint was written.
struct PendingRollIn {
  /// Bare serialized PartitionSample (no envelope; the checkpoint record as
  /// a whole is CRC-framed).
  std::string sample_payload;
  uint64_t min_timestamp = 0;
  uint64_t max_timestamp = 0;
  /// Partition ids >= this bound did not exist when the checkpoint was
  /// written; finding one on resume proves the roll-in completed.
  PartitionId id_lower_bound = 0;
};

struct IngestCheckpoint {
  /// Replay watermark: the sequence number of the next element to apply.
  uint64_t next_sequence = 0;
  /// How many partitions this ingestor has started (the fork salt for the
  /// next partition's sampler stream).
  uint64_t partitions_started = 0;
  /// Wall-clock creation time, for observability only (tooling prints the
  /// checkpoint age; no correctness decision reads it).
  uint64_t created_unix_micros = 0;
  /// The ingestor's private RNG engine at checkpoint time.
  Pcg64::State rng;
  /// Partition ids rolled in by this ingestor, in creation order.
  std::vector<PartitionId> rolled_in;
  /// Progress of the open partition.
  PartitionProgress progress;
  /// Mid-stream AnySampler::SaveState record for the open partition's
  /// sampler; empty when no partition is open.
  std::string sampler_state;
  /// Set when a finalized partition's roll-in was unconfirmed.
  std::optional<PendingRollIn> pending;

  /// Encodes the record (leading kCheckpointRecordMagic, then version).
  std::string Serialize() const;

  /// Decodes and structurally validates a record produced by Serialize().
  /// Corruption on any malformed field; the embedded sampler state and
  /// pending sample payload are NOT decoded here (VerifyCheckpointPayload
  /// does the deep check).
  static Result<IngestCheckpoint> Deserialize(std::string_view bytes);
};

/// Full structural verification of a checkpoint payload: Deserialize() plus
/// decoding the embedded sampler-state record and pending sample payload.
/// Recovery scans use this so a checkpoint is either provably loadable or
/// quarantined — invalid bytes are never half-decoded at resume time.
Status VerifyCheckpointPayload(std::string_view bytes);

// --- Delta-journal records (asynchronous checkpointing) ---------------------
//
// Between full snapshots the background checkpoint writer appends small
// DELTA records to a per-key write-ahead log owned by the newest snapshot
// generation ("<key>.<generation>.wal" in the file backend). Two kinds:
//
//   * kProgress — watermark / RNG / partition-progress advance WITHOUT the
//     sampler state. Cheap enough to group-commit at high cadence, but NOT a
//     resume point: the sampler's contents at that watermark were never
//     persisted, so resuming there would have to skip replayed elements
//     whose sampling decisions are lost. Resolution treats these records as
//     observability/liveness only.
//   * kClosePending — a complete IngestCheckpoint (checkpoint A of the
//     two-phase close protocol) embedded as a delta. State-complete: the
//     open partition was just finalized, so the record carries everything a
//     resume needs, without rewriting a snapshot generation per close.
//
// Resume resolves a chain to the NEWEST state-complete record — the
// snapshot, overridden by each kClosePending in append order — and replays
// the source from that record's watermark; exactly-once Append*At replay
// makes the recovered samples bit-identical to an uninterrupted run.

enum class CheckpointDeltaKind : uint8_t {
  kProgress = 1,
  kClosePending = 2,
};

struct CheckpointDeltaRecord {
  CheckpointDeltaKind kind = CheckpointDeltaKind::kProgress;

  // kProgress fields (ignored for kClosePending).
  uint64_t next_sequence = 0;
  uint64_t partitions_started = 0;
  uint64_t created_unix_micros = 0;
  Pcg64::State rng;
  PartitionProgress progress;

  /// kClosePending only: a full serialized IngestCheckpoint.
  std::string checkpoint_payload;

  /// Encodes the record (leading kCheckpointDeltaRecordMagic, version,
  /// kind). The result is one WAL record payload — frame it with
  /// AppendCheckpointWalFrame before persisting.
  std::string Serialize() const;

  /// Decodes and structurally validates a record produced by Serialize().
  static Result<CheckpointDeltaRecord> Deserialize(std::string_view bytes);
};

/// Deep verification of one delta payload: Deserialize() plus — for
/// kClosePending — full verification of the embedded checkpoint. Recovery
/// scans truncate a WAL at the first record that fails this.
Status VerifyCheckpointDeltaPayload(std::string_view bytes);

// WAL framing: each record is
//
//   fixed32  payload length
//   fixed32  CRC-32 of the payload
//   payload  a CheckpointDeltaRecord encoding
//
// so a tear (a partially appended group at the tail) or a bit flip is
// detected per record and the intact prefix stays loadable.

inline constexpr size_t kCheckpointWalFrameBytes = 8;

/// Appends one CRC-framed record to `wal`.
void AppendCheckpointWalFrame(std::string* wal, std::string_view payload);

struct CheckpointWalParse {
  /// Record payloads whose framing and CRC verified, in append order.
  std::vector<std::string> records;
  /// Length of the WAL prefix covering exactly those records.
  size_t valid_bytes = 0;
  /// Bytes remained past the valid prefix (torn append or corruption).
  bool torn_tail = false;
};

/// Scans `wal` front to back, stopping at the first record whose frame or
/// CRC fails. Structural only — record payloads are not decoded here.
CheckpointWalParse ParseCheckpointWal(std::string_view wal);

/// One snapshot generation plus its delta journal, as read back from a
/// SampleStore.
struct CheckpointChain {
  uint64_t generation = 0;
  /// The snapshot's checkpoint payload (envelope already verified+removed).
  std::string snapshot;
  /// CRC-valid WAL record payloads, in append order.
  std::vector<std::string> deltas;
  /// The WAL ended in a torn/corrupt record that was ignored.
  bool torn_tail = false;
};

/// Replays the delta chain onto the snapshot: returns the checkpoint of the
/// newest state-complete record (the snapshot or a kClosePending delta).
/// Trailing kProgress deltas never advance the result — see the kind
/// commentary above for why that is required for bit-identical resume.
Result<IngestCheckpoint> ResolveCheckpointChain(const CheckpointChain& chain);

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_CHECKPOINT_H_
