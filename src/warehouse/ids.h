// Identifiers for warehouse objects. A data set (paper §1: "a bag of
// values", e.g. one relational column or one XML leaf) is named by a
// DatasetId; its mutually disjoint partitions (§2) carry monotonically
// assigned PartitionIds within the data set.

#ifndef SAMPWH_WAREHOUSE_IDS_H_
#define SAMPWH_WAREHOUSE_IDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "src/util/status.h"

namespace sampwh {

using DatasetId = std::string;
using PartitionId = uint64_t;

struct PartitionKey {
  DatasetId dataset;
  PartitionId partition;

  bool operator==(const PartitionKey& other) const = default;
  bool operator<(const PartitionKey& other) const {
    return std::tie(dataset, partition) <
           std::tie(other.dataset, other.partition);
  }
};

/// Hash functor for PartitionKey, usable with unordered containers and the
/// sharded read-path caches (which re-mix the result for shard selection).
struct PartitionKeyHash {
  size_t operator()(const PartitionKey& key) const {
    const size_t h = std::hash<DatasetId>{}(key.dataset);
    // Boost-style combine.
    return h ^ (std::hash<PartitionId>{}(key.partition) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};

/// Dataset ids double as file-name stems in the file-backed sample store,
/// so they are restricted to [A-Za-z0-9_.-], non-empty, <= 200 bytes.
Status ValidateDatasetId(const DatasetId& id);

/// A checkpoint key is either a plain dataset id or a dataset id followed
/// by '#' and a cursor suffix from the same charset (parallel ingest stores
/// one cursor per stripe under "<dataset>#s<stripe>"). Because '#' is
/// outside the dataset-id charset, keyed cursors can never collide with a
/// real dataset's own checkpoint, and '#' is safe in file names so the
/// file-backed store can use keys as stems unchanged.
Status ValidateCheckpointKey(const std::string& key);

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_IDS_H_
