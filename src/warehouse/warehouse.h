// The sample warehouse facade (paper Fig. 1): per-partition samples are
// rolled in as partitions arrive in the full-scale warehouse, rolled out as
// partitions are retired, and merged on demand into a uniform sample of any
// union of a data set's partitions.

#ifndef SAMPWH_WAREHOUSE_WAREHOUSE_H_
#define SAMPWH_WAREHOUSE_WAREHOUSE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/core/any_sampler.h"
#include "src/core/merge.h"
#include "src/core/sample.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"
#include "src/warehouse/catalog.h"
#include "src/warehouse/ids.h"
#include "src/warehouse/retention.h"
#include "src/warehouse/sample_store.h"

namespace sampwh {

struct WarehouseOptions {
  /// How partitions are sampled by IngestBatch / StreamIngestor.
  SamplerConfig sampler;
  /// How samples are merged at query time. The footprint bound defaults to
  /// the sampler's bound; exceedance probability likewise.
  MergeOptions merge;
  /// Merge tree shape for multiway queries.
  MergeStrategy merge_strategy = MergeStrategy::kLeftFold;
  /// Reuse hypergeometric alias tables across queries (§4.2). Effective
  /// mainly for symmetric merge trees.
  bool cache_alias_tables = false;
  /// When > 0, the warehouse owns a ThreadPool of this many workers and
  /// uses it for multi-partition IngestBatch calls (unless the caller
  /// passes an explicit pool) and for kParallelTree merges.
  size_t worker_threads = 0;
  /// Seed for all sampling/merging randomness in this warehouse.
  uint64_t seed = 0x5157313136ULL;
};

class Warehouse {
 public:
  /// `store` must outlive nothing — the warehouse takes ownership.
  Warehouse(const WarehouseOptions& options,
            std::unique_ptr<SampleStore> store);

  /// Warehouse with an in-memory store.
  explicit Warehouse(const WarehouseOptions& options);

  const WarehouseOptions& options() const { return options_; }

  // --- Catalog operations -------------------------------------------------

  Status CreateDataset(const DatasetId& id);
  /// Creates a dataset whose partitions are sampled under `config` rather
  /// than the warehouse default — e.g. a hot fact column with a large
  /// footprint budget next to thousands of small dimension columns.
  Status CreateDataset(const DatasetId& id, const SamplerConfig& config);
  /// The sampler configuration ingestion uses for `dataset` (the dataset
  /// override if present, the warehouse default otherwise).
  SamplerConfig SamplerConfigFor(const DatasetId& dataset) const;
  /// Drops the dataset and deletes all its stored samples.
  Status DropDataset(const DatasetId& id);
  bool HasDataset(const DatasetId& id) const;
  std::vector<DatasetId> ListDatasets() const;
  Result<DatasetInfo> GetDatasetInfo(const DatasetId& id) const;
  Result<std::vector<PartitionInfo>> ListPartitions(
      const DatasetId& dataset) const;
  Result<std::vector<PartitionId>> PartitionsInTimeRange(
      const DatasetId& dataset, uint64_t from, uint64_t to) const;

  // --- Roll-in / roll-out -------------------------------------------------

  /// Registers and stores a sample produced elsewhere (a remote sampling
  /// node, a StreamIngestor, IngestBatch). Allocates and returns the
  /// partition id. Timestamps annotate the partition's event-time range.
  Result<PartitionId> RollIn(const DatasetId& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);

  /// Removes the partition's sample and catalog entry.
  Status RollOut(const DatasetId& dataset, PartitionId partition);

  /// Rolls out every partition that `policy` expires at time `now`
  /// (sliding the §2 retention window in one call). Returns the ids that
  /// were rolled out.
  Result<std::vector<PartitionId>> ApplyRetention(
      const DatasetId& dataset, const RetentionPolicy& policy,
      uint64_t now);

  /// Compacts several partitions into one: merges their samples (uniform
  /// over the union, Theorem 1 machinery), rolls the inputs out and rolls
  /// the merged sample in under a fresh id covering the combined time
  /// range. This is how "one partition per day" warehouses consolidate a
  /// closed week into a single stored sample without touching the full
  /// data. Requires at least two partitions. Returns the new partition id.
  Result<PartitionId> CompactPartitions(
      const DatasetId& dataset, const std::vector<PartitionId>& parts);

  /// Fetches one stored partition sample.
  Result<PartitionSample> GetSample(const DatasetId& dataset,
                                    PartitionId partition) const;

  // --- Ingestion ----------------------------------------------------------

  /// Divides `values` into `num_partitions` contiguous chunks, samples each
  /// independently (in parallel when `pool` is given), and rolls all of
  /// them in. Returns the new partition ids in chunk order.
  Result<std::vector<PartitionId>> IngestBatch(
      const DatasetId& dataset, const std::vector<Value>& values,
      size_t num_partitions, ThreadPool* pool = nullptr);

  // --- Queries ------------------------------------------------------------

  /// A uniform random sample of the union of the named partitions
  /// (which are disjoint by construction): the S_K of §2.
  Result<PartitionSample> MergedSample(const DatasetId& dataset,
                                       const std::vector<PartitionId>& parts);

  /// A uniform random sample of the entire data set (all partitions).
  Result<PartitionSample> MergedSampleAll(const DatasetId& dataset);

  /// A uniform random sample of the partitions intersecting [from, to] —
  /// the paper's daily-to-weekly/monthly rollup.
  Result<PartitionSample> MergedSampleInTimeRange(const DatasetId& dataset,
                                                  uint64_t from, uint64_t to);

  /// A fresh RNG stream derived from the warehouse seed, for external
  /// samplers that will roll their results in.
  Pcg64 ForkRng();

  // --- Durability ---------------------------------------------------------

  /// Writes the catalog (datasets, partition metadata, id allocators) to
  /// `path` with atomic replace. Together with a FileSampleStore this
  /// makes the warehouse recoverable across restarts.
  Status SaveManifest(const std::string& path) const;

  /// Reopens a warehouse from a manifest written by SaveManifest and the
  /// sample store it referenced. Verifies that every cataloged partition's
  /// sample is present and consistent with its metadata.
  static Result<std::unique_ptr<Warehouse>> Restore(
      const WarehouseOptions& options, std::unique_ptr<SampleStore> store,
      const std::string& manifest_path);

 private:
  Result<PartitionSample> MergeByIds(const DatasetId& dataset,
                                     const std::vector<PartitionId>& parts);
  /// The per-dataset mutex for `dataset` (NotFound when it does not
  /// exist). Must be called without mu_ held.
  Result<std::shared_ptr<std::mutex>> DatasetMutex(
      const DatasetId& dataset) const;

  WarehouseOptions options_;
  std::unique_ptr<SampleStore> store_;
  std::unique_ptr<ThreadPool> pool_;  // when options_.worker_threads > 0

  // Locking model. `mu_` guards the catalog *structure* (which datasets
  // exist), sampler_overrides_, and dataset_mu_; dataset creation/drop and
  // manifest I/O take it exclusively, everything else takes it shared.
  // Partition metadata of one dataset is guarded by that dataset's own
  // mutex (taken with mu_ held shared), so ingest into different datasets
  // never serializes on one global lock. rng_ has a dedicated mutex so RNG
  // forks stay cheap under catalog traffic; long-running work (sampling,
  // merging, store I/O on read paths) runs outside all warehouse locks.
  mutable std::shared_mutex mu_;
  Catalog catalog_;
  std::map<DatasetId, SamplerConfig> sampler_overrides_;
  mutable std::map<DatasetId, std::shared_ptr<std::mutex>> dataset_mu_;
  mutable std::mutex rng_mu_;
  Pcg64 rng_;
  AliasCache alias_cache_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_WAREHOUSE_H_
