// The sample warehouse facade (paper Fig. 1): per-partition samples are
// rolled in as partitions arrive in the full-scale warehouse, rolled out as
// partitions are retired, and merged on demand into a uniform sample of any
// union of a data set's partitions.

#ifndef SAMPWH_WAREHOUSE_WAREHOUSE_H_
#define SAMPWH_WAREHOUSE_WAREHOUSE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/any_sampler.h"
#include "src/core/merge.h"
#include "src/core/sample.h"
#include "src/util/random.h"
#include "src/util/sharded_cache.h"
#include "src/util/thread_pool.h"
#include "src/warehouse/catalog.h"
#include "src/warehouse/ids.h"
#include "src/warehouse/merge_memo.h"
#include "src/warehouse/retention.h"
#include "src/warehouse/sample_cache.h"
#include "src/warehouse/sample_store.h"

namespace sampwh {

struct WarehouseOptions {
  /// How partitions are sampled by IngestBatch / StreamIngestor.
  SamplerConfig sampler;
  /// How samples are merged at query time. The footprint bound defaults to
  /// the sampler's bound; exceedance probability likewise.
  MergeOptions merge;
  /// Merge tree shape for multiway queries.
  MergeStrategy merge_strategy = MergeStrategy::kLeftFold;
  /// Reuse hypergeometric alias tables across queries (§4.2). Effective
  /// mainly for symmetric merge trees.
  bool cache_alias_tables = false;
  /// When > 0, the warehouse owns a ThreadPool of this many workers and
  /// uses it for multi-partition IngestBatch calls (unless the caller
  /// passes an explicit pool), for kParallelTree merges, and to prefetch
  /// the partitions of a union query in parallel (SampleStore::GetMany).
  size_t worker_threads = 0;
  /// Byte budget of the deserialized-sample read cache in front of the
  /// sample store; 0 disables it. The cache is semantically invisible: a
  /// cached read is bit-identical to a store read (strict invalidation on
  /// roll-out / retention / drop), it only removes store IO and
  /// deserialization from warm reads.
  uint64_t sample_cache_bytes = 64ull << 20;
  /// Byte budget of the memoized merge-tree node cache; 0 (the default)
  /// disables memoization. When enabled, every merge node draws from an
  /// RNG stream derived from its (dataset, partition-id set, merge
  /// options) identity, so query results are deterministic for a given
  /// seed and warm queries are bit-identical to cold ones — repeated
  /// identical queries return the identical sample. Callers that need
  /// independent randomness across repeated queries (uniformity property
  /// tests) set merge.disable_memoization instead of re-deriving seeds.
  uint64_t merge_memo_bytes = 0;
  /// Shard count for the read-path caches (rounded to a power of two).
  size_t cache_shards = 16;
  /// Seed for all sampling/merging randomness in this warehouse.
  uint64_t seed = 0x5157313136ULL;
  /// When non-empty, the catalog manifest is re-persisted to this path
  /// (atomic replace, best effort) after every catalog mutation — roll-in,
  /// roll-out, dataset create/drop. Required for crash-safe resumable
  /// ingestion: the checkpoint protocol's duplicate-roll-in reconciliation
  /// relies on the restored id allocator reflecting every completed
  /// roll-in.
  std::string manifest_path;
};

/// Counters of the two read-path caches (zeroed structs when disabled).
struct WarehouseCacheStats {
  CacheStats sample_cache;
  CacheStats merge_memo;
};

class Warehouse {
 public:
  /// `store` must outlive nothing — the warehouse takes ownership.
  Warehouse(const WarehouseOptions& options,
            std::unique_ptr<SampleStore> store);

  /// Warehouse with an in-memory store.
  explicit Warehouse(const WarehouseOptions& options);

  const WarehouseOptions& options() const { return options_; }

  // --- Catalog operations -------------------------------------------------

  Status CreateDataset(const DatasetId& id);
  /// Creates a dataset whose partitions are sampled under `config` rather
  /// than the warehouse default — e.g. a hot fact column with a large
  /// footprint budget next to thousands of small dimension columns.
  Status CreateDataset(const DatasetId& id, const SamplerConfig& config);
  /// The sampler configuration ingestion uses for `dataset` (the dataset
  /// override if present, the warehouse default otherwise).
  SamplerConfig SamplerConfigFor(const DatasetId& dataset) const;
  /// Drops the dataset and deletes all its stored samples.
  Status DropDataset(const DatasetId& id);
  bool HasDataset(const DatasetId& id) const;
  std::vector<DatasetId> ListDatasets() const;
  Result<DatasetInfo> GetDatasetInfo(const DatasetId& id) const;
  Result<std::vector<PartitionInfo>> ListPartitions(
      const DatasetId& dataset) const;
  Result<std::vector<PartitionId>> PartitionsInTimeRange(
      const DatasetId& dataset, uint64_t from, uint64_t to) const;

  // --- Roll-in / roll-out -------------------------------------------------

  /// Registers and stores a sample produced elsewhere (a remote sampling
  /// node, a StreamIngestor, IngestBatch). Allocates and returns the
  /// partition id. Timestamps annotate the partition's event-time range.
  Result<PartitionId> RollIn(const DatasetId& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);

  /// Roll-in under an explicitly supplied partition id (AlreadyExists when
  /// occupied). Remote producers — a shard coordinator placing partitions
  /// across warehouse nodes under globally allocated ids — use this so the
  /// same partition carries the same id on every node that ever merges it;
  /// the catalog keeps its allocator ahead of explicit ids.
  Result<PartitionId> RollInAt(const DatasetId& dataset, PartitionId id,
                               const PartitionSample& sample,
                               uint64_t min_timestamp = 0,
                               uint64_t max_timestamp = 0);

  /// Removes the partition's sample and catalog entry.
  Status RollOut(const DatasetId& dataset, PartitionId partition);

  /// Rolls out every partition that `policy` expires at time `now`
  /// (sliding the §2 retention window in one call). Returns the ids that
  /// were rolled out.
  Result<std::vector<PartitionId>> ApplyRetention(
      const DatasetId& dataset, const RetentionPolicy& policy,
      uint64_t now);

  /// Compacts several partitions into one: merges their samples (uniform
  /// over the union, Theorem 1 machinery), rolls the inputs out and rolls
  /// the merged sample in under a fresh id covering the combined time
  /// range. This is how "one partition per day" warehouses consolidate a
  /// closed week into a single stored sample without touching the full
  /// data. Requires at least two partitions. Returns the new partition id.
  Result<PartitionId> CompactPartitions(
      const DatasetId& dataset, const std::vector<PartitionId>& parts);

  /// Fetches one stored partition sample.
  Result<PartitionSample> GetSample(const DatasetId& dataset,
                                    PartitionId partition) const;

  /// Content digest of the partition's STORED sample bytes, read from the
  /// backing store — never the read cache — so anti-entropy comparisons
  /// observe on-disk reality: a sample whose file rotted after it was
  /// cached reads Corruption here (and the file backend quarantines it),
  /// not a healthy cached copy. NotFound when the partition is not
  /// cataloged or its stored bytes are gone.
  Result<uint64_t> PartitionContentDigest(const DatasetId& dataset,
                                          PartitionId partition) const;

  // --- Ingestion ----------------------------------------------------------

  /// Divides `values` into `num_partitions` contiguous chunks, samples each
  /// independently (in parallel when `pool` is given), and rolls all of
  /// them in. Returns the new partition ids in chunk order.
  Result<std::vector<PartitionId>> IngestBatch(
      const DatasetId& dataset, const std::vector<Value>& values,
      size_t num_partitions, ThreadPool* pool = nullptr);

  // --- Queries ------------------------------------------------------------

  /// A uniform random sample of the union of the named partitions
  /// (which are disjoint by construction): the S_K of §2.
  Result<PartitionSample> MergedSample(const DatasetId& dataset,
                                       const std::vector<PartitionId>& parts);

  /// A uniform random sample of the entire data set (all partitions).
  Result<PartitionSample> MergedSampleAll(const DatasetId& dataset);

  /// A uniform random sample of the partitions intersecting [from, to] —
  /// the paper's daily-to-weekly/monthly rollup.
  Result<PartitionSample> MergedSampleInTimeRange(const DatasetId& dataset,
                                                  uint64_t from, uint64_t to);

  /// A fresh RNG stream derived from the warehouse seed, for external
  /// samplers that will roll their results in.
  Pcg64 ForkRng();

  // --- Ingest checkpoints -------------------------------------------------

  /// Persists a StreamIngestor checkpoint record for `dataset` through the
  /// sample store (generational, CRC-framed). NotFound when the dataset
  /// does not exist.
  Status PutIngestCheckpoint(const DatasetId& dataset,
                             std::string_view payload);

  /// Keyed variant for ingestors that maintain several checkpoint cursors
  /// over one dataset (ParallelIngestor stores one per stripe under
  /// "<dataset>#s<stripe>"). Validates that `dataset` exists, then stores
  /// the record under `key`; read it back with GetIngestCheckpoint(key).
  Status PutIngestCheckpointKeyed(const DatasetId& dataset,
                                  const std::string& key,
                                  std::string_view payload);

  /// Appends delta-journal records to the WAL of `key`'s newest snapshot
  /// generation (one group commit). Validates that `dataset` exists.
  /// FailedPrecondition when no snapshot generation exists yet; append
  /// failures must not be retried (see SampleStore::AppendCheckpointDeltas).
  Status AppendIngestCheckpointDeltasKeyed(
      const DatasetId& dataset, const std::string& key,
      const std::vector<std::string>& records);

  /// The newest valid checkpoint payload for `dataset`; NotFound when none
  /// exists.
  Result<std::string> GetIngestCheckpoint(const DatasetId& dataset) const;

  /// The newest verifiable snapshot generation for `key` plus its WAL
  /// records; resolve with ResolveCheckpointChain(). NotFound when none
  /// exists.
  Result<CheckpointChain> GetIngestCheckpointChain(
      const std::string& key) const;

  /// Drops every stored checkpoint generation for `dataset`.
  Status DeleteIngestCheckpoint(const DatasetId& dataset);

  /// Datasets with at least one stored ingest checkpoint.
  Result<std::vector<DatasetId>> ListIngestCheckpoints() const;

  // --- Read-path caches ---------------------------------------------------

  /// Hit/miss/eviction counters and current residency of the sample cache
  /// and the merge memo.
  WarehouseCacheStats GetCacheStats() const;

  /// Drops every cached sample and memoized merge node. Queries after an
  /// invalidation recompute from the store and — with memoization enabled —
  /// produce bit-identical results, since merge RNG streams derive from
  /// query identity, not cache state. Call this when the backing store is
  /// mutated externally (outside this Warehouse's roll-in/roll-out).
  void InvalidateCaches();

  // --- Durability ---------------------------------------------------------

  /// Writes the catalog (datasets, partition metadata, id allocators) to
  /// `path` with atomic replace. Together with a FileSampleStore this
  /// makes the warehouse recoverable across restarts.
  Status SaveManifest(const std::string& path) const;

  /// Reopens a warehouse from a manifest written by SaveManifest and the
  /// sample store it referenced. Verifies that every cataloged partition's
  /// sample is present and consistent with its metadata.
  static Result<std::unique_ptr<Warehouse>> Restore(
      const WarehouseOptions& options, std::unique_ptr<SampleStore> store,
      const std::string& manifest_path);

  /// Outcome of RestoreWithRecovery: the reopened warehouse plus what the
  /// store-level recovery scan found and which cataloged partitions had to
  /// be dropped to bring catalog and store back into agreement.
  struct RestoredWarehouse {
    std::unique_ptr<Warehouse> warehouse;
    RecoveryReport report;
    std::vector<PartitionKey> dropped_partitions;
  };

  /// Crash-tolerant reopen. Where Restore() fails on the first damaged or
  /// missing sample, this runs SampleStore::Recover() (dropping orphan
  /// temps, quarantining torn/corrupt files) and then reconciles: any
  /// cataloged partition whose sample is unreadable or disagrees with its
  /// metadata is removed from the catalog (and its stored sample deleted),
  /// so the returned warehouse serves exactly the surviving partitions.
  /// Caches start cold; queries over survivors work immediately.
  static Result<RestoredWarehouse> RestoreWithRecovery(
      const WarehouseOptions& options, std::unique_ptr<SampleStore> store,
      const std::string& manifest_path);

  /// The deserialized-sample cache, or nullptr when disabled. Test-only:
  /// lets invariant checks Peek at residency without perturbing the cache.
  const SampleCache* sample_cache_for_testing() const {
    return sample_cache_.get();
  }

  /// The backing store. Test-only: for arming fault injection mid-scenario.
  SampleStore* store_for_testing() { return store_.get(); }

 private:
  Result<PartitionSample> MergeByIds(const DatasetId& dataset,
                                     const std::vector<PartitionId>& parts);
  /// Recursive memoized balanced-tree merge over the canonically sorted
  /// `ids` (leaves[i] is the stored sample of ids[i]).
  Result<PartitionSample> MergeMemoized(
      const DatasetId& dataset, std::span<const PartitionId> ids,
      std::span<const std::shared_ptr<const PartitionSample>> leaves,
      const MergeOptions& merge_options, uint64_t options_fingerprint,
      uint64_t memo_epoch);
  /// Fetches the samples for `ids` in order, through the sample cache when
  /// configured (misses prefetched in parallel via SampleStore::GetMany on
  /// the warehouse pool).
  Result<std::vector<std::shared_ptr<const PartitionSample>>> FetchSamples(
      const DatasetId& dataset, std::span<const PartitionId> ids);
  /// Both locks guarding one dataset's partition metadata, acquired in a
  /// single pass: the shared structure lock on mu_ and the dataset's own
  /// mutex. While a DatasetLock is held the dataset cannot be dropped
  /// (drop needs mu_ exclusively), so the per-dataset mutex stays alive.
  struct DatasetLock {
    std::shared_lock<std::shared_mutex> structure;
    std::unique_lock<std::mutex> dataset;
  };
  /// Acquires the dataset's locks (NotFound when it does not exist). Must
  /// be called without mu_ held.
  Result<DatasetLock> LockDataset(const DatasetId& dataset) const;
  /// Re-persists the manifest to options_.manifest_path (no-op when
  /// unset). Must be called WITHOUT mu_ held — SaveManifest takes it
  /// exclusively.
  void AutoPersistManifest();

  WarehouseOptions options_;
  std::unique_ptr<SampleStore> store_;
  std::unique_ptr<ThreadPool> pool_;  // when options_.worker_threads > 0
  std::unique_ptr<SampleCache> sample_cache_;  // when sample_cache_bytes > 0
  std::unique_ptr<MergeMemo> merge_memo_;      // when merge_memo_bytes > 0

  // Locking model. `mu_` guards the catalog *structure* (which datasets
  // exist), sampler_overrides_, and dataset_mu_; dataset creation/drop and
  // manifest I/O take it exclusively, everything else takes it shared.
  // Partition metadata of one dataset is guarded by that dataset's own
  // mutex (taken with mu_ held shared), so ingest into different datasets
  // never serializes on one global lock. rng_ has a dedicated mutex so RNG
  // forks stay cheap under catalog traffic; long-running work (sampling,
  // merging, store I/O on read paths) runs outside all warehouse locks.
  mutable std::shared_mutex mu_;
  Catalog catalog_;
  std::map<DatasetId, SamplerConfig> sampler_overrides_;
  mutable std::map<DatasetId, std::shared_ptr<std::mutex>> dataset_mu_;
  mutable std::mutex rng_mu_;
  Pcg64 rng_;
  AliasCache alias_cache_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_WAREHOUSE_H_
