#include "src/warehouse/ids.h"

#include <string_view>

namespace sampwh {

Status ValidateDatasetId(const DatasetId& id) {
  if (id.empty()) return Status::InvalidArgument("empty dataset id");
  if (id.size() > 200) return Status::InvalidArgument("dataset id too long");
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "dataset id may only contain [A-Za-z0-9_.-]: " + id);
    }
  }
  return Status::OK();
}

Status ValidateCheckpointKey(const std::string& key) {
  const size_t hash = key.find('#');
  if (hash == std::string::npos) return ValidateDatasetId(key);
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key.substr(0, hash)));
  if (key.size() > 200) {
    return Status::InvalidArgument("checkpoint key too long");
  }
  const std::string_view suffix(key.data() + hash + 1, key.size() - hash - 1);
  if (suffix.empty()) {
    return Status::InvalidArgument("empty checkpoint key suffix: " + key);
  }
  for (const char c : suffix) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "checkpoint key suffix may only contain [A-Za-z0-9_.-]: " + key);
    }
  }
  return Status::OK();
}

}  // namespace sampwh
