#include "src/warehouse/ids.h"

namespace sampwh {

Status ValidateDatasetId(const DatasetId& id) {
  if (id.empty()) return Status::InvalidArgument("empty dataset id");
  if (id.size() > 200) return Status::InvalidArgument("dataset id too long");
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "dataset id may only contain [A-Za-z0-9_.-]: " + id);
    }
  }
  return Status::OK();
}

}  // namespace sampwh
