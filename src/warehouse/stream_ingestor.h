// Streaming ingestion for one data set (or one split of its stream): runs
// a sampler over arriving elements and, whenever the partitioning policy
// closes a partition, finalizes the sample and rolls it into the warehouse
// — the left half of Fig. 1 in the paper.
//
// Crash-safe resumable ingestion: with checkpoints enabled the ingestor
// periodically persists an IngestCheckpoint (sampler state, partitioner
// progress, its private RNG, and the replay watermark) through the
// warehouse's sample store. After a crash, Resume() reloads the newest
// valid checkpoint and the sequence-addressed Append*At entry points give
// exactly-once semantics over an at-least-once delivery stream: a source
// that replays from (at or before) next_sequence() has every duplicate
// batch acknowledged and skipped, every new element applied exactly once,
// and the resulting rolled-in samples are bit-identical to an
// uninterrupted run.

#ifndef SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_
#define SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/core/any_sampler.h"
#include "src/warehouse/checkpoint_writer.h"
#include "src/warehouse/partitioner.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {

/// When the ingestor writes checkpoints on its own. Both dimensions are
/// optional (0 disables); a checkpoint is also always written around each
/// partition close (the two-phase close protocol), and Checkpoint() forces
/// one at any time.
///
/// By default checkpoints are ASYNCHRONOUS: the ingest thread snapshots its
/// state into a lock-free ring and a background CheckpointWriter performs
/// the store IO — cadence checkpoints become delta-journal appends that are
/// group-committed off the hot path. Only two writes stay synchronous with
/// ingest: checkpoint A of a partition close (the exactly-once barrier) and
/// an explicit Checkpoint() call.
struct CheckpointPolicy {
  /// Checkpoint after this many applied elements (0: off).
  uint64_t every_n_elements = 0;
  /// Checkpoint when the event-time clock advanced this many ticks since
  /// the last checkpoint (0: off).
  uint64_t every_t_ticks = 0;
  /// Legacy mode: every cadence checkpoint is a full snapshot written
  /// inline on the ingest thread.
  bool synchronous = false;
  /// Asynchronous mode: how long a queued delta may wait before the writer
  /// group-commits it.
  uint64_t group_commit_micros = 2000;
  /// Asynchronous mode: rotate a fresh full snapshot once the delta journal
  /// since the last one exceeds either bound.
  uint64_t snapshot_every_wal_bytes = 1ull << 20;
  uint64_t snapshot_every_deltas = 1024;
};

class StreamIngestor {
 public:
  /// `warehouse` must outlive the ingestor; the dataset must exist.
  /// `partitioner` decides partition boundaries; pass nullptr for a single
  /// never-closing partition (explicit Flush() only).
  StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                 std::unique_ptr<Partitioner> partitioner);

  /// Variant for callers that manage several ingestors over one dataset
  /// (ParallelIngestor's stripes): the private RNG is supplied explicitly
  /// instead of forked from the warehouse engine — so each stripe's
  /// randomness is a pure function of (seed, stripe), independent of
  /// construction order — and checkpoints are stored under `checkpoint_key`
  /// rather than the dataset name.
  StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                 std::unique_ptr<Partitioner> partitioner, Pcg64 rng,
                 std::string checkpoint_key);

  /// Feeds one element with an optional event timestamp (virtual ticks).
  /// Timestamps must be non-decreasing within one ingestor.
  Status Append(Value v, uint64_t timestamp = 0);

  /// Feeds a batch of elements sharing one event timestamp. Partitioner
  /// checks and progress bookkeeping are amortized per chunk (the chunk
  /// size is negotiated with the partitioner via MaxAppendable), and each
  /// chunk flows through the sampler's skip-based AddBatch fast path.
  /// Count/temporal policies produce exactly the partition boundaries an
  /// element-wise Append loop would; ratio-trigger policies close within
  /// one check granule of the element-wise trigger point.
  Status AppendBatch(std::span<const Value> values, uint64_t timestamp = 0);

  /// Sequence-addressed variants for exactly-once replay: `sequence` is
  /// the 0-based position of `v` (or of values[0]) in the source stream.
  /// An element wholly below next_sequence() was already applied and is
  /// acknowledged with OK without touching the sampler; a batch straddling
  /// the watermark has only its unapplied suffix applied; a sequence past
  /// the watermark is a gap in delivery — FailedPrecondition, nothing
  /// applied.
  Status AppendAt(uint64_t sequence, Value v, uint64_t timestamp = 0);
  Status AppendBatchAt(uint64_t sequence, std::span<const Value> values,
                       uint64_t timestamp = 0);

  /// Finalizes and rolls in the open partition, if it holds any elements.
  Status Flush();

  /// Turns on the checkpoint protocol (cadence per `policy`; a zero policy
  /// still checkpoints around partition closes and on Checkpoint()). Unless
  /// policy.synchronous, the ingestor creates its own background
  /// CheckpointWriter.
  void EnableCheckpoints(const CheckpointPolicy& policy);

  /// Variant sharing an external CheckpointWriter (ParallelIngestor runs
  /// one writer for all stripes). `writer` must outlive the ingestor.
  void EnableCheckpoints(const CheckpointPolicy& policy,
                         CheckpointWriter* writer);

  /// Forces a durable checkpoint of the current state now (in asynchronous
  /// mode this is a barrier through the background writer).
  Status Checkpoint();

  /// Reopens ingestion from the newest state-complete record of `dataset`'s
  /// checkpoint chain — the newest verifiable snapshot generation with its
  /// delta journal replayed onto it (NotFound when none exists). Reconciles
  /// a close that was interrupted mid-protocol: a pending partition whose
  /// roll-in provably completed is adopted, one whose roll-in is absent is
  /// rolled in now. The returned ingestor has checkpoints enabled with
  /// `policy`; feed it the source stream from next_sequence() (or any
  /// earlier replay point) via the Append*At entry points. `checkpoint_key`
  /// selects a non-default checkpoint cursor (empty: the dataset name);
  /// `shared_writer` routes asynchronous checkpoints through an external
  /// CheckpointWriter instead of an owned one.
  static Result<std::unique_ptr<StreamIngestor>> Resume(
      Warehouse* warehouse, DatasetId dataset,
      std::unique_ptr<Partitioner> partitioner,
      const CheckpointPolicy& policy = {}, std::string checkpoint_key = {},
      CheckpointWriter* shared_writer = nullptr);

  /// The replay watermark: sequence number of the next element to apply.
  uint64_t next_sequence() const { return next_sequence_; }

  /// Partition ids this ingestor has rolled in so far, in creation order.
  const std::vector<PartitionId>& rolled_in() const { return rolled_in_; }

  /// Elements in the currently open partition.
  uint64_t open_elements() const { return progress_.elements; }

 private:
  /// A finalized partition between the two checkpoints of the close
  /// protocol: recorded durably (checkpoint A) before RollIn, cleared
  /// durably (checkpoint B) after.
  struct PendingClose {
    PartitionSample sample;
    uint64_t min_timestamp = 0;
    uint64_t max_timestamp = 0;
    /// No partition id >= this bound existed when the close began.
    PartitionId id_lower_bound = 0;
    /// Checkpoint A has been persisted.
    bool checkpointed = false;
  };

  Status CloseCurrentPartition();
  /// Drives the pending close to completion: checkpoint A (if not yet
  /// durable), RollIn, checkpoint B. Errors leave pending_ set so the next
  /// append retries.
  Status CompletePendingClose();
  void StartPartition();
  // progress_.sample_size is refreshed lazily — only where a partitioning
  // policy can actually read it (before ShouldCloseAfter and when closing)
  // — so the per-element hot path pays no sampler query.
  void RefreshSampleSize();
  /// Serializes the full ingestor state (the IngestCheckpoint payload).
  std::string BuildCheckpointPayload() const;
  /// Synchronous full snapshot through the warehouse's store; resets the
  /// cadence counters on success.
  Status WriteCheckpoint();
  /// Queues checkpoint B of a close (or its resume-adoption equivalent):
  /// best-effort — a loss is reconciled by the adoption rule.
  void WriteCloseComplete();
  /// Cadence check after applied work; checkpoint failures here are
  /// swallowed (the stream stays correct, only resumption granularity
  /// degrades — the next cadence point retries). In asynchronous mode this
  /// only snapshots state into the writer's ring; a full ring skips the
  /// cadence point (backpressure) and retries on the next chunk.
  void MaybeCheckpoint();
  void ResetCadence();
  /// Smallest partition id that provably did not exist yet (allocator
  /// lower bound for the pending-close adoption rule).
  Result<PartitionId> NextIdLowerBound() const;

  Warehouse* warehouse_;
  DatasetId dataset_;
  /// Where this ingestor's checkpoint generations live; the dataset name by
  /// default, a "<dataset>#s<stripe>" key for one stripe of a parallel run.
  std::string checkpoint_key_;
  std::unique_ptr<Partitioner> partitioner_;

  /// The ingestor's private RNG: per-partition sampler streams fork from
  /// it keyed by partitions_started_, never from the warehouse RNG, so a
  /// restored checkpoint replays the exact same randomness.
  Pcg64 rng_;
  uint64_t partitions_started_ = 0;
  uint64_t next_sequence_ = 0;

  std::optional<AnySampler> sampler_;
  PartitionProgress progress_;
  std::vector<PartitionId> rolled_in_;
  std::optional<PendingClose> pending_;

  bool checkpoints_enabled_ = false;
  CheckpointPolicy policy_;
  uint64_t elements_since_checkpoint_ = 0;
  uint64_t last_checkpoint_tick_ = 0;

  /// Asynchronous mode: the background writer (owned unless shared via the
  /// EnableCheckpoints overload) and this stream's lane into it.
  std::unique_ptr<CheckpointWriter> owned_writer_;
  CheckpointWriter::Channel* channel_ = nullptr;
  /// A snapshot generation exists (or is queued) for checkpoint_key_, so
  /// delta records have a chain to extend. Until anchored, every cadence
  /// point sends a full snapshot.
  bool anchored_ = false;
  /// The writer asked for (or a full ring deferred) a compaction snapshot.
  bool snapshot_requested_ = false;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_
