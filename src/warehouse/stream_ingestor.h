// Streaming ingestion for one data set (or one split of its stream): runs
// a sampler over arriving elements and, whenever the partitioning policy
// closes a partition, finalizes the sample and rolls it into the warehouse
// — the left half of Fig. 1 in the paper.

#ifndef SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_
#define SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/core/any_sampler.h"
#include "src/warehouse/partitioner.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {

class StreamIngestor {
 public:
  /// `warehouse` must outlive the ingestor; the dataset must exist.
  /// `partitioner` decides partition boundaries; pass nullptr for a single
  /// never-closing partition (explicit Flush() only).
  StreamIngestor(Warehouse* warehouse, DatasetId dataset,
                 std::unique_ptr<Partitioner> partitioner);

  /// Feeds one element with an optional event timestamp (virtual ticks).
  /// Timestamps must be non-decreasing within one ingestor.
  Status Append(Value v, uint64_t timestamp = 0);

  /// Feeds a batch of elements sharing one event timestamp. Partitioner
  /// checks and progress bookkeeping are amortized per chunk (the chunk
  /// size is negotiated with the partitioner via MaxAppendable), and each
  /// chunk flows through the sampler's skip-based AddBatch fast path.
  /// Count/temporal policies produce exactly the partition boundaries an
  /// element-wise Append loop would; ratio-trigger policies close within
  /// one check granule of the element-wise trigger point.
  Status AppendBatch(std::span<const Value> values, uint64_t timestamp = 0);

  /// Finalizes and rolls in the open partition, if it holds any elements.
  Status Flush();

  /// Partition ids this ingestor has rolled in so far, in creation order.
  const std::vector<PartitionId>& rolled_in() const { return rolled_in_; }

  /// Elements in the currently open partition.
  uint64_t open_elements() const { return progress_.elements; }

 private:
  Status CloseCurrentPartition();
  void StartPartition();
  // progress_.sample_size is refreshed lazily — only where a partitioning
  // policy can actually read it (before ShouldCloseAfter and when closing)
  // — so the per-element hot path pays no sampler query.
  void RefreshSampleSize();

  Warehouse* warehouse_;
  DatasetId dataset_;
  std::unique_ptr<Partitioner> partitioner_;

  std::optional<AnySampler> sampler_;
  PartitionProgress progress_;
  std::vector<PartitionId> rolled_in_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_STREAM_INGESTOR_H_
