// Stream partitioning policies (§2): the incoming stream of a data set is
// cut into mutually disjoint partitions, each of which is sampled
// independently. Three policies from the paper's scenarios:
//
//  * CountPartitioner    — fixed-size partitions ("form data-set partitions
//                          of specified size on the fly", §4.3, which also
//                          gives Algorithm HB its a priori N).
//  * TemporalPartitioner — one partition per time window ("one partition
//                          per day ... combine daily samples to form
//                          weekly, monthly, or yearly samples").
//  * RatioTriggerPartitioner — robustness against rate fluctuation: keep a
//                          fixed-size sample and finalize the partition as
//                          soon as sample/parent falls to a minimum
//                          sampling fraction, then start a new partition.

#ifndef SAMPWH_WAREHOUSE_PARTITIONER_H_
#define SAMPWH_WAREHOUSE_PARTITIONER_H_

#include <cstdint>
#include <memory>

namespace sampwh {

/// Running state of the partition currently being filled, as visible to a
/// partitioning policy.
struct PartitionProgress {
  uint64_t elements = 0;     ///< parent elements in the open partition
  uint64_t sample_size = 0;  ///< current sample size for it
  uint64_t first_timestamp = 0;
  uint64_t last_timestamp = 0;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Close the open partition before accepting an element with timestamp
  /// `next_timestamp`? (Used by count/temporal policies: the arriving
  /// element belongs to the next partition.)
  virtual bool ShouldCloseBefore(const PartitionProgress& progress,
                                 uint64_t next_timestamp) {
    (void)progress;
    (void)next_timestamp;
    return false;
  }

  /// Close the open partition after the element just accepted? (Used by
  /// the ratio trigger: the element that drove the fraction to the bound
  /// still belongs to the finalized partition.)
  virtual bool ShouldCloseAfter(const PartitionProgress& progress) {
    (void)progress;
    return false;
  }

  /// Batched ingestion: an upper bound on how many more elements may be
  /// appended to the open partition before the policy's close conditions
  /// must be re-evaluated. Count-based policies return the exact headroom
  /// (so batch and element-wise ingestion produce identical partition
  /// boundaries); policies that only trigger on ShouldCloseAfter may
  /// return a check granule, in which case batched ingestion closes the
  /// partition within one granule of the element-wise trigger point.
  /// UINT64_MAX means the whole batch can be appended in one chunk.
  virtual uint64_t MaxAppendable(const PartitionProgress& progress) const {
    (void)progress;
    return UINT64_MAX;
  }
};

/// Fixed-size partitions of `max_elements` each.
class CountPartitioner : public Partitioner {
 public:
  explicit CountPartitioner(uint64_t max_elements);
  bool ShouldCloseBefore(const PartitionProgress& progress,
                         uint64_t next_timestamp) override;
  uint64_t MaxAppendable(const PartitionProgress& progress) const override;

 private:
  uint64_t max_elements_;
};

/// Tumbling event-time windows of `window_ticks`, aligned to the first
/// element's timestamp within each window.
class TemporalPartitioner : public Partitioner {
 public:
  explicit TemporalPartitioner(uint64_t window_ticks);
  bool ShouldCloseBefore(const PartitionProgress& progress,
                         uint64_t next_timestamp) override;

 private:
  uint64_t window_ticks_;
};

/// §2's on-the-fly trigger: finalize once sample_size/elements has dropped
/// to `min_sampling_fraction` (and the partition holds at least
/// `min_elements`, so a cold sampler does not trigger immediately).
class RatioTriggerPartitioner : public Partitioner {
 public:
  RatioTriggerPartitioner(double min_sampling_fraction,
                          uint64_t min_elements = 1);
  bool ShouldCloseAfter(const PartitionProgress& progress) override;
  /// Granule at which batched ingestion re-checks the ratio; the batched
  /// trigger fires within kBatchCheckGranule elements of the element-wise
  /// trigger point.
  uint64_t MaxAppendable(const PartitionProgress& progress) const override;

  static constexpr uint64_t kBatchCheckGranule = 1024;

 private:
  double min_sampling_fraction_;
  uint64_t min_elements_;
};

std::unique_ptr<Partitioner> MakeCountPartitioner(uint64_t max_elements);
std::unique_ptr<Partitioner> MakeTemporalPartitioner(uint64_t window_ticks);
std::unique_ptr<Partitioner> MakeRatioTriggerPartitioner(
    double min_sampling_fraction, uint64_t min_elements = 1);

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_PARTITIONER_H_
