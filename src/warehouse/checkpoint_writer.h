// Background checkpoint writer: takes checkpoint persistence off the ingest
// hot path.
//
// An ingest thread never writes a checkpoint itself in asynchronous mode.
// It snapshots its state into a small Slot and pushes it onto a per-stream
// SPSC ring; a single dedicated writer thread drains every registered
// channel on a group-commit cadence and performs the actual store IO:
//
//   * kProgress deltas are CUMULATIVE (each carries the full watermark /
//     RNG / progress view), so an adjacent run coalesces to its last record
//     — the writer appends a handful of records per wake no matter how hot
//     the cadence is. They are group-committed to the newest generation's
//     WAL with no fsync on the ingest thread.
//   * Snapshots (full IngestCheckpoint payloads) rotate a fresh snapshot
//     generation via PutCheckpoint and reset the delta chain.
//   * kClosePending records (checkpoint A of the two-phase close) are
//     state-complete; they ride the WAL when it is healthy and are promoted
//     to a full snapshot when it is not.
//
// Backpressure is the ring itself: a full ring fails the offer, the
// ingestor's cadence counters keep accumulating, and the offer is retried
// on the next chunk — checkpoints get coarser under load instead of
// stalling ingest.
//
// Failure containment: after ANY append or put failure the channel's WAL is
// considered broken — a torn put can leave a damaged newest generation, and
// appending behind it would hide close records from a fallback resume
// (duplicate roll-in). While broken, progress deltas are dropped (they are
// observability only), close records are promoted to full snapshots, and
// the channel requests a fresh anchor snapshot; a successful put heals it.
//
// Durability barriers: close A must be durable BEFORE the roll-in it
// describes (exactly-once replay depends on it), so WriteDurableClose /
// WriteDurableSnapshot block the caller on a per-record ack carrying the
// actual store Status. Everything else is fire-and-forget.

#ifndef SAMPWH_WAREHOUSE_CHECKPOINT_WRITER_H_
#define SAMPWH_WAREHOUSE_CHECKPOINT_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/spsc_ring.h"
#include "src/util/status.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/ids.h"

namespace sampwh {

class Warehouse;

class CheckpointWriter {
 public:
  struct Options {
    /// Writer wake cadence: queued deltas wait at most this long before
    /// they are group-committed.
    uint64_t group_commit_micros = 2000;
    /// Slots per channel ring. A full ring coarsens that stream's
    /// checkpoint cadence (offers fail and are retried next chunk).
    size_t ring_capacity = 64;
    /// Compaction policy: request a fresh snapshot once the WAL since the
    /// last one exceeds either bound.
    uint64_t snapshot_every_wal_bytes = 1ull << 20;
    uint64_t snapshot_every_deltas = 1024;
  };

  /// One ingest stream's lane to the writer. SPSC: exactly one producer
  /// thread at a time (the thread driving that stream's ingestor); the
  /// writer thread is the only consumer.
  class Channel {
   public:
    /// Queues a progress delta. False when the ring is full — the caller
    /// keeps its cadence counters and retries later.
    bool OfferDelta(const CheckpointDeltaRecord& record);

    /// Queues a full snapshot (cadence anchor / compaction). False when
    /// the ring is full.
    bool OfferSnapshot(std::string payload);

    /// Queues a full snapshot, waiting for ring space if needed; durability
    /// is best-effort (no ack).
    void PushSnapshot(std::string payload);

    /// Queues a close record without a durability wait (close B / the
    /// resume-adoption record: a loss is reconciled by the adoption rule,
    /// so it must not be dropped but need not be awaited).
    void PushClose(std::string payload);

    /// Durable full snapshot: blocks until the writer persisted it and
    /// returns the store's Status (forced Checkpoint()).
    Status WriteDurableSnapshot(std::string payload);

    /// Durable close record (checkpoint A): blocks until persisted —
    /// to the WAL when healthy, as a promoted snapshot otherwise.
    Status WriteDurableClose(std::string payload);

    /// True once per compaction request: the writer wants the producer to
    /// send a fresh full snapshot at its next cadence point.
    bool TakeWantsSnapshot();

   private:
    friend class CheckpointWriter;

    struct Ack {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      Status status;
    };

    struct Slot {
      /// Full snapshot payload in record.checkpoint_payload.
      bool is_snapshot = false;
      CheckpointDeltaRecord record;
      std::shared_ptr<Ack> ack;
    };

    Channel(CheckpointWriter* writer, DatasetId dataset, std::string key,
            size_t ring_capacity, bool have_generation);

    void BlockingPush(Slot slot);
    Status PushWithAck(Slot slot);

    CheckpointWriter* writer_;
    const DatasetId dataset_;
    const std::string key_;
    SpscRing<Slot> ring_;
    std::atomic<bool> want_snapshot_{false};

    // Writer-thread-only state.
    bool have_generation_ = false;
    bool wal_broken_ = false;
    uint64_t wal_bytes_since_snapshot_ = 0;
    uint64_t wal_records_since_snapshot_ = 0;
  };

  CheckpointWriter(Warehouse* warehouse, const Options& options);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Registers a stream. `have_generation` is true when a snapshot
  /// generation already exists for `key` (resume). The channel lives as
  /// long as the writer; thread-safe.
  Channel* AddChannel(DatasetId dataset, std::string key,
                      bool have_generation);

 private:
  void Signal();
  void WriterMain();
  void DrainChannel(Channel* channel);
  static void CompleteAck(const std::shared_ptr<Channel::Ack>& ack,
                          const Status& status);

  Warehouse* const warehouse_;
  const Options options_;

  std::mutex channels_mu_;
  std::vector<std::unique_ptr<Channel>> channels_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool work_signal_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_CHECKPOINT_WRITER_H_
