// SampleCache: a sharded LRU cache of *deserialized* PartitionSamples in
// front of the SampleStore. Warehouse queries re-read the same per-partition
// samples over and over (every merged-union query touches each member
// partition); without this cache each read round-trips the store and fully
// re-deserializes the sample. The cache never changes sampling semantics —
// a cached read is bit-identical to a store read — because entries are
// strictly invalidated on roll-out / retention expiry, and whole datasets
// are detached by an epoch bump on drop (partition ids restart at 0 when a
// dataset is recreated, so (dataset, partition) alone is not a stable key
// across drops; (dataset, epoch, partition) is).
//
// Insertions racing with invalidation are benign by construction: partition
// ids are never reused within a dataset epoch, so a stale entry re-inserted
// by an in-flight reader after its partition rolled out is unreachable —
// every query validates the catalog first — and simply ages out via LRU.

#ifndef SAMPWH_WAREHOUSE_SAMPLE_CACHE_H_
#define SAMPWH_WAREHOUSE_SAMPLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/core/sample.h"
#include "src/util/sharded_cache.h"
#include "src/warehouse/ids.h"

namespace sampwh {

class SampleCache {
 public:
  SampleCache(size_t num_shards, uint64_t byte_budget);

  /// The current epoch of `dataset`. Readers must resolve the epoch BEFORE
  /// fetching from the backing store and insert under that same epoch; a
  /// concurrent dataset drop then leaves their insertion unreachable
  /// instead of resurrecting pre-drop bytes under a recreated dataset.
  uint64_t CurrentEpoch(const DatasetId& dataset) const;

  /// Cached deserialized sample, or nullptr on miss / stale epoch.
  std::shared_ptr<const PartitionSample> Lookup(const DatasetId& dataset,
                                                uint64_t epoch,
                                                PartitionId partition);

  /// Like Lookup but side-effect free: no recency freshening, no hit/miss
  /// accounting. Lets tests and invariant checkers probe residency without
  /// perturbing LRU order or statistics.
  std::shared_ptr<const PartitionSample> Peek(const DatasetId& dataset,
                                              uint64_t epoch,
                                              PartitionId partition) const;

  /// Inserts (replacing) the sample under (dataset, epoch, partition).
  void Insert(const DatasetId& dataset, uint64_t epoch, PartitionId partition,
              std::shared_ptr<const PartitionSample> sample);

  /// Drops the current-epoch entry for one partition (roll-out, retention
  /// expiry).
  void Invalidate(const DatasetId& dataset, PartitionId partition);

  /// Detaches every entry of `dataset` by bumping its epoch (dataset drop);
  /// residual entries are also purged eagerly to release their bytes.
  void InvalidateDataset(const DatasetId& dataset);

  /// Drops all entries (all datasets, all epochs).
  void Clear();

  CacheStats Stats() const;
  uint64_t byte_budget() const { return cache_.byte_budget(); }

 private:
  struct EpochKey {
    DatasetId dataset;
    uint64_t epoch = 0;
    PartitionId partition = 0;
    bool operator==(const EpochKey& other) const = default;
  };
  struct EpochKeyHash {
    size_t operator()(const EpochKey& key) const {
      const size_t h = PartitionKeyHash{}(
          PartitionKey{key.dataset, key.partition});
      return h ^ (std::hash<uint64_t>{}(key.epoch) + 0x9e3779b97f4a7c15ULL +
                  (h << 6) + (h >> 2));
    }
  };

  mutable std::mutex epoch_mu_;
  std::unordered_map<DatasetId, uint64_t> epochs_;
  ShardedLruCache<EpochKey, PartitionSample, EpochKeyHash> cache_;
};

}  // namespace sampwh

#endif  // SAMPWH_WAREHOUSE_SAMPLE_CACHE_H_
