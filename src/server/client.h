// WarehouseClient: blocking client for the warehouse server's wire
// protocol. One TCP connection, one outstanding request at a time (the
// protocol is strict request/response); open several clients for
// concurrency. Transport errors poison the connection — every later call
// fails fast with the same IOError until the client is reconnected.

#ifndef SAMPWH_SERVER_CLIENT_H_
#define SAMPWH_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sample.h"
#include "src/server/tenant.h"
#include "src/server/wire.h"
#include "src/warehouse/catalog.h"

namespace sampwh {

struct ClientOptions {
  uint32_t max_frame_bytes = kWireDefaultMaxFrameBytes;
  /// Per-recv timeout while waiting for a response; 0 waits forever.
  int read_timeout_millis = 30'000;
};

/// Watermark ack of the streaming-ingest verbs.
struct IngestAck {
  /// Replay watermark: sequence of the next element the server will apply.
  uint64_t next_sequence = 0;
  /// Partitions the session has rolled in so far.
  uint64_t partitions_rolled_in = 0;
};

/// kTenantStats response.
struct TenantStats {
  TenantQuota quota;
  TenantUsage usage;
};

/// kServerStats response.
struct RemoteServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;
  uint64_t requests_served = 0;
  uint64_t error_responses = 0;
  uint64_t protocol_errors = 0;
  uint64_t num_datasets = 0;
};

class WarehouseClient {
 public:
  static Result<std::unique_ptr<WarehouseClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  ~WarehouseClient();

  WarehouseClient(const WarehouseClient&) = delete;
  WarehouseClient& operator=(const WarehouseClient&) = delete;

  /// The raw socket; robustness tests use it to inject hostile bytes.
  int fd() const { return fd_; }

  // --- Admin ---------------------------------------------------------------
  Result<std::string> Ping();
  Result<RemoteServerStats> ServerStats();
  /// Asks the server to shut down (it still answers this request).
  Status Shutdown();

  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);
  Status SetTenantQuota(const std::string& tenant, const TenantQuota& quota);
  Result<TenantStats> GetTenantStats(const std::string& tenant);
  Result<std::vector<std::string>> ListTenants();

  // --- Catalog -------------------------------------------------------------
  Status CreateDataset(const std::string& tenant, const std::string& dataset);
  Status DropDataset(const std::string& tenant, const std::string& dataset);
  Result<std::vector<std::string>> ListDatasets(const std::string& tenant);
  Result<std::vector<PartitionInfo>> ListPartitions(
      const std::string& tenant, const std::string& dataset);

  // --- Roll-in / roll-out / query ------------------------------------------
  Result<PartitionId> RollIn(const std::string& tenant,
                             const std::string& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);
  /// Roll-in under a caller-chosen partition id (the shard coordinator's
  /// globally allocated ids).
  Result<PartitionId> RollInAt(const std::string& tenant,
                               const std::string& dataset, PartitionId id,
                               const PartitionSample& sample,
                               uint64_t min_timestamp = 0,
                               uint64_t max_timestamp = 0);
  Status RollOut(const std::string& tenant, const std::string& dataset,
                 PartitionId id);

  /// Merged sample over the named partitions (empty `ids` = all). The
  /// result is bit-identical to the embedded warehouse's MergedSample.
  Result<PartitionSample> Query(const std::string& tenant,
                                const std::string& dataset,
                                const std::vector<PartitionId>& ids = {});

  // --- Streaming ingest ----------------------------------------------------
  /// Opens (or resumes) the dataset's ingest session. The ack's
  /// next_sequence is the replay point: feed the source stream from there
  /// via IngestAppend — re-driving from any earlier point is safe
  /// (duplicates are acknowledged and skipped server-side).
  Result<IngestAck> IngestOpen(const std::string& tenant,
                               const std::string& dataset);
  Result<IngestAck> IngestAppend(const std::string& tenant,
                                 const std::string& dataset, uint64_t sequence,
                                 const std::vector<Value>& values,
                                 uint64_t timestamp = 0);
  /// Closes the open partition (if non-empty) and checkpoints the session.
  Result<IngestAck> IngestFlush(const std::string& tenant,
                                const std::string& dataset);

 private:
  explicit WarehouseClient(int fd, ClientOptions options);

  /// Frames and sends one request, reads and parses the response. Returns
  /// the response body bytes on an OK status, the server's structured
  /// error otherwise.
  Result<std::string> Call(Verb verb, std::string_view body);
  Result<IngestAck> IngestCall(Verb verb, std::string_view body);

  int fd_ = -1;
  ClientOptions options_;
  /// First transport error; fails every later call fast.
  Status broken_ = Status::OK();
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_CLIENT_H_
