// WarehouseClient: blocking client for the warehouse server's wire
// protocol. One TCP connection, one outstanding request at a time (the
// protocol is strict request/response); open several clients for
// concurrency.
//
// Failure handling. Connects are bounded by connect_timeout_millis (a
// black-holed address fails in bounded time, never hangs). A transport
// error poisons the connection; the next call transparently reconnects
// and — for IDEMPOTENT verbs only — retries with exponential backoff and
// seeded jitter. Queries, pings, stats and listings retry freely; the
// streaming-ingest verbs retry because the server's sequence watermark
// makes re-driven appends exactly-once; roll-ins and admin mutations are
// NEVER retried (a duplicate would be ambiguous), their error surfaces to
// the caller. After breaker_failure_threshold consecutive transport
// failures a per-client circuit breaker opens: calls fail fast with
// kUnavailable (no connect timeout burned) until breaker_open_millis
// passes, then a half-open probe either closes it or re-opens it. The
// shard coordinator keeps one client per node, so this breaker is exactly
// a per-node breaker.
//
// Deadlines: deadline_millis (per-client default, overridable with
// set_deadline_millis) is propagated to the server in the wire header; the
// server aborts the request with kDeadlineExceeded once it passes, even
// mid-merge. 0 sends no deadline (and keeps the v1 request head on the
// wire).

#ifndef SAMPWH_SERVER_CLIENT_H_
#define SAMPWH_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sample.h"
#include "src/server/tenant.h"
#include "src/server/wire.h"
#include "src/util/deadline.h"
#include "src/util/random.h"
#include "src/warehouse/catalog.h"

namespace sampwh {

struct ClientOptions {
  uint32_t max_frame_bytes = kWireDefaultMaxFrameBytes;
  /// Per-recv timeout while waiting for a response; 0 waits forever.
  int read_timeout_millis = 30'000;
  /// Bound on connection establishment (non-blocking connect + poll). A
  /// black-holed peer fails with kDeadlineExceeded after this long instead
  /// of hanging for the kernel's minutes-long SYN retry budget. 0 falls
  /// back to a blocking connect.
  int connect_timeout_millis = 5'000;
  /// Transparent re-attempts after a transport failure, idempotent verbs
  /// only. 0 disables retries (every transport error surfaces).
  uint32_t max_retries = 2;
  /// Exponential backoff between retries, with seeded jitter in
  /// [backoff/2, backoff].
  uint64_t backoff_initial_millis = 10;
  uint64_t backoff_max_millis = 500;
  /// Seeds the retry jitter.
  uint64_t seed = 0;
  /// Circuit breaker: consecutive transport failures that open it, and how
  /// long it stays open before a half-open probe. threshold 0 disables.
  uint32_t breaker_failure_threshold = 3;
  uint64_t breaker_open_millis = 1'000;
  /// Default per-request deadline propagated in the wire header; 0 = none.
  uint64_t deadline_millis = 0;
};

/// Monotonic counters over the client's lifetime.
struct ClientStatsSnapshot {
  /// Re-attempts after a transport failure (not first tries).
  uint64_t retries_attempted = 0;
  /// Successful reconnects after a poisoned connection.
  uint64_t reconnects = 0;
  /// Times the circuit breaker transitioned to open.
  uint64_t breaker_open_total = 0;
  /// Transport-level failures observed (connect, send, recv, framing).
  uint64_t transport_errors = 0;
};

/// Watermark ack of the streaming-ingest verbs.
struct IngestAck {
  /// Replay watermark: sequence of the next element the server will apply.
  uint64_t next_sequence = 0;
  /// Partitions the session has rolled in so far.
  uint64_t partitions_rolled_in = 0;
};

/// kTenantStats response.
struct TenantStats {
  TenantQuota quota;
  TenantUsage usage;
};

/// kServerStats response.
struct RemoteServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;
  uint64_t requests_served = 0;
  uint64_t error_responses = 0;
  uint64_t protocol_errors = 0;
  uint64_t num_datasets = 0;
  /// Appended after v1 of the body; 0 when the server predates them.
  uint64_t connections_shed = 0;
  uint64_t deadlines_exceeded = 0;
  /// Replication counters, appended after v2; 0 when the server predates
  /// them.
  uint64_t replica_writes = 0;
  uint64_t failover_reads = 0;
  uint64_t scrub_rounds = 0;
  uint64_t partitions_healed = 0;
  uint64_t digest_mismatches = 0;
};

/// One readable partition copy in a kPartitionDigests listing.
struct PartitionDigest {
  PartitionId id = 0;
  /// Content digest of the stored sample payload:
  /// (CRC-32 of the serialized bytes << 32) | byte length. Two replicas
  /// holding bit-identical copies always agree; a corrupt or missing copy
  /// is omitted from the listing entirely.
  uint64_t digest = 0;
  uint64_t min_timestamp = 0;
  uint64_t max_timestamp = 0;
};

class WarehouseClient {
 public:
  static Result<std::unique_ptr<WarehouseClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  /// Creates a client WITHOUT connecting: the first call establishes the
  /// connection (and fails like any transport error if the peer is down,
  /// feeding the breaker). For supervisors — e.g. a shard coordinator
  /// tolerating an unreachable node — that must outlive a peer's outage.
  static std::unique_ptr<WarehouseClient> Open(const std::string& host,
                                               uint16_t port,
                                               ClientOptions options = {});

  ~WarehouseClient();

  WarehouseClient(const WarehouseClient&) = delete;
  WarehouseClient& operator=(const WarehouseClient&) = delete;

  /// The raw socket; robustness tests use it to inject hostile bytes.
  int fd() const { return fd_; }

  /// Overrides the per-request deadline from ClientOptions for subsequent
  /// calls; 0 clears it.
  void set_deadline_millis(uint64_t millis) { deadline_millis_ = millis; }
  uint64_t deadline_millis() const { return deadline_millis_; }

  /// Header flag bits (kRequestFlag*) stamped on subsequent requests. The
  /// coordinator sets kRequestFlagFailoverRead around a query it re-drives
  /// onto a replica; 0 clears. Nonzero flags force the v2 request head.
  void set_request_flags(uint64_t flags) { request_flags_ = flags; }
  uint64_t request_flags() const { return request_flags_; }

  ClientStatsSnapshot stats() const { return stats_; }

  /// True while the circuit breaker refuses calls (kUnavailable fail-fast).
  bool breaker_open() const;

  // --- Admin ---------------------------------------------------------------
  Result<std::string> Ping();
  Result<RemoteServerStats> ServerStats();
  /// Asks the server to shut down (it still answers this request).
  Status Shutdown();

  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);
  Status SetTenantQuota(const std::string& tenant, const TenantQuota& quota);
  Result<TenantStats> GetTenantStats(const std::string& tenant);
  Result<std::vector<std::string>> ListTenants();

  // --- Catalog -------------------------------------------------------------
  Status CreateDataset(const std::string& tenant, const std::string& dataset);
  Status DropDataset(const std::string& tenant, const std::string& dataset);
  Result<std::vector<std::string>> ListDatasets(const std::string& tenant);
  Result<std::vector<PartitionInfo>> ListPartitions(
      const std::string& tenant, const std::string& dataset);

  // --- Roll-in / roll-out / query ------------------------------------------
  Result<PartitionId> RollIn(const std::string& tenant,
                             const std::string& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);
  /// Roll-in under a caller-chosen partition id (the shard coordinator's
  /// globally allocated ids).
  Result<PartitionId> RollInAt(const std::string& tenant,
                               const std::string& dataset, PartitionId id,
                               const PartitionSample& sample,
                               uint64_t min_timestamp = 0,
                               uint64_t max_timestamp = 0);
  Status RollOut(const std::string& tenant, const std::string& dataset,
                 PartitionId id);

  // --- Replication ---------------------------------------------------------
  /// Places a replica copy of `sample` under `id`, bypassing quota
  /// admission (the primary already admitted the write; replicas charge
  /// unconditionally so usage mirrors stored footprint). Idempotent: a
  /// copy with the same content digest acks without rewriting; a divergent
  /// copy is replaced in place. `heal` marks an anti-entropy repair so the
  /// server counts it under partitions_healed.
  Result<PartitionId> ReplicaRollIn(const std::string& tenant,
                                    const std::string& dataset, PartitionId id,
                                    const PartitionSample& sample,
                                    uint64_t min_timestamp = 0,
                                    uint64_t max_timestamp = 0,
                                    bool heal = false);

  /// Content digests of every READABLE partition copy of the dataset on
  /// this node (corrupt copies are quarantined by the scan and omitted).
  /// The anti-entropy scrubber compares these across replicas.
  Result<std::vector<PartitionDigest>> PartitionDigests(
      const std::string& tenant, const std::string& dataset);

  /// Merged sample over the named partitions (empty `ids` = all). The
  /// result is bit-identical to the embedded warehouse's MergedSample.
  Result<PartitionSample> Query(const std::string& tenant,
                                const std::string& dataset,
                                const std::vector<PartitionId>& ids = {});

  // --- Streaming ingest ----------------------------------------------------
  /// Opens (or resumes) the dataset's ingest session. The ack's
  /// next_sequence is the replay point: feed the source stream from there
  /// via IngestAppend — re-driving from any earlier point is safe
  /// (duplicates are acknowledged and skipped server-side).
  Result<IngestAck> IngestOpen(const std::string& tenant,
                               const std::string& dataset);
  Result<IngestAck> IngestAppend(const std::string& tenant,
                                 const std::string& dataset, uint64_t sequence,
                                 const std::vector<Value>& values,
                                 uint64_t timestamp = 0);
  /// Closes the open partition (if non-empty) and checkpoints the session.
  Result<IngestAck> IngestFlush(const std::string& tenant,
                                const std::string& dataset);

 private:
  WarehouseClient(int fd, std::string host, uint16_t port,
                  ClientOptions options);

  /// Retry driver: breaker gate, then up to 1 + max_retries attempts of
  /// CallOnce for idempotent verbs (reconnecting a poisoned connection
  /// between attempts), exactly one attempt otherwise. Returns the
  /// response body bytes on an OK status, the server's structured error
  /// otherwise.
  Result<std::string> Call(Verb verb, std::string_view body);
  /// One framed request/response exchange on the current connection.
  Result<std::string> CallOnce(Verb verb, std::string_view body);
  Result<IngestAck> IngestCall(Verb verb, std::string_view body);

  /// Replaces a poisoned connection with a fresh one.
  Status Reconnect();
  void NoteTransportFailure();
  void NoteTransportSuccess();

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  uint64_t deadline_millis_ = 0;
  uint64_t request_flags_ = 0;
  Pcg64 jitter_rng_;
  /// First transport error; fails every later call fast (until the retry
  /// driver reconnects).
  Status broken_ = Status::OK();

  uint32_t consecutive_failures_ = 0;
  SteadyTime breaker_open_until_ = SteadyTime::min();
  ClientStatsSnapshot stats_;
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_CLIENT_H_
