// Wire protocol of the warehouse server: length-prefixed, CRC-framed binary
// frames over TCP, following the same framing convention as the checkpoint
// delta WAL (util/serialization):
//
//   fixed32  payload length  (little-endian; bounded by max_frame_bytes)
//   fixed32  CRC-32 of the payload
//   payload
//
// Request payload (v1):  fixed32 magic "SWRQ" | fixed32 verb | body
// Request payload (v2):  fixed32 magic "SWR2" | fixed32 verb
//                        | string header-extension | body
// Response payload:      fixed32 magic "SWRS" | fixed32 status
//                        | string message | body
//
// The v2 header extension is a length-delimited blob of varints —
// currently [deadline_millis, flags] — so future fields append without
// another magic: readers stop at the blob's end, writers may extend it.
// Servers accept both versions (a v1 request simply has no deadline);
// clients emit v1 unless a request carries header state, so a fleet of old
// and new binaries interoperates in both directions for deadline-free
// traffic.
//
// Bodies are encoded with the BinaryWriter primitives (varints, strings);
// samples travel as their versioned serialized form. A frame whose length
// field exceeds the negotiated bound, whose CRC mismatches, or whose magic
// is wrong is a protocol error: the server answers a structured error frame
// where it still can and drops the connection — it never crashes and never
// interprets unverified bytes.

#ifndef SAMPWH_SERVER_WIRE_H_
#define SAMPWH_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/serialization.h"
#include "src/util/status.h"

namespace sampwh {

inline constexpr uint32_t kWireRequestMagic = 0x51525753;    // "SWRQ"
inline constexpr uint32_t kWireRequestMagicV2 = 0x32525753;  // "SWR2"
inline constexpr uint32_t kWireResponseMagic = 0x53525753;   // "SWRS"
inline constexpr size_t kWireFrameHeaderBytes = 8;
/// Default per-frame payload bound. Large enough for any sample under the
/// warehouse's footprint discipline; small enough that a garbage length
/// field can never drive an allocation of gigabytes.
inline constexpr uint32_t kWireDefaultMaxFrameBytes = 16u << 20;

/// The server's verbs. Values are wire format — append, never renumber.
enum class Verb : uint32_t {
  kPing = 1,
  kServerStats = 2,
  kShutdown = 3,

  kCreateTenant = 10,
  kSetTenantQuota = 11,
  kTenantStats = 12,
  kListTenants = 13,

  kCreateDataset = 20,
  kDropDataset = 21,
  kListDatasets = 22,
  kListPartitions = 23,
  kRollIn = 24,
  kRollInAt = 25,
  kRollOut = 26,
  kReplicaRollIn = 27,

  kQuery = 30,
  kPartitionDigests = 31,

  kIngestOpen = 40,
  kIngestAppend = 41,
  kIngestFlush = 42,
};

/// True when `verb` names a verb this build understands.
bool IsKnownVerb(uint32_t verb);

/// Frames `payload` for the wire: header (length + CRC) then payload bytes.
std::string EncodeFrame(std::string_view payload);

/// Outcome of pulling one frame out of a byte buffer.
enum class FrameDecodeResult {
  kOk,            ///< *payload points into `buffer`; *consumed advanced
  kNeedMoreData,  ///< the buffer holds a prefix of a valid-looking frame
  kOversized,     ///< declared length exceeds `max_frame_bytes`
  kBadCrc,        ///< payload bytes fail the CRC check
};

/// Attempts to decode one frame from the front of `buffer`. On kOk,
/// `*payload` views the payload inside `buffer` and `*frame_bytes` is the
/// total frame size to consume. kOversized and kBadCrc are unrecoverable
/// for the connection (framing is lost); the caller should drop it.
FrameDecodeResult DecodeFrame(std::string_view buffer, uint32_t max_frame_bytes,
                              std::string_view* payload, size_t* frame_bytes);

/// Request-header flag bits (RequestHeader::flags). Wire format — append,
/// never renumber.
///
/// Set by a coordinator on a query it re-drove onto a replica after the
/// primary failed; the serving node counts it so failover traffic is
/// visible in server stats.
inline constexpr uint64_t kRequestFlagFailoverRead = 1ull << 0;

/// kReplicaRollIn body flag bits. Wire format — append, never renumber.
///
/// The write is an anti-entropy HEAL (re-replicating a missing or
/// divergent copy) rather than first placement; the serving node counts it
/// under partitions_healed.
inline constexpr uint64_t kReplicaRollInFlagHeal = 1ull << 0;

/// Per-request metadata the v2 header extension carries.
struct RequestHeader {
  /// Milliseconds the client gives the whole request, measured from the
  /// moment the server parses the head; 0 means no deadline.
  uint64_t deadline_millis = 0;
  /// Reserved bit flags; servers ignore bits they do not know.
  uint64_t flags = 0;
};

/// Serializes a request payload head: v1 (magic + verb) when `header` is
/// all defaults, v2 (magic + verb + header extension) otherwise. The
/// caller appends the body with the returned writer.
void BeginRequest(BinaryWriter* writer, Verb verb,
                  const RequestHeader& header = {});

/// Parses a request payload head of either version: verifies the magic,
/// extracts the verb (which may be unknown — the dispatcher answers a
/// structured error) and fills `*header` (defaults for a v1 request). The
/// remaining bytes in the reader are the body.
Status ParseRequestHead(BinaryReader* reader, uint32_t* verb,
                        RequestHeader* header);

/// Serializes a response payload: magic, status, message, then the caller
/// appends the body.
void BeginResponse(BinaryWriter* writer, const Status& status);

/// Parses a response payload head into a Status (code + message). The
/// remaining bytes in the reader are the body.
Status ParseResponseHead(BinaryReader* reader);

/// Maps a wire status code back to a Status with `message`. Unknown codes
/// map to Internal (a newer server speaking to an older client).
Status StatusFromWire(uint32_t code, std::string message);

// --- Blocking socket IO helpers --------------------------------------------

/// Writes all of `data` to `fd`, retrying on EINTR / short writes. IOError
/// on a closed or failed socket (SIGPIPE suppressed via MSG_NOSIGNAL).
Status WriteAll(int fd, std::string_view data);

/// Reads exactly `n` bytes into `out` (resized). kOk, or IOError on
/// EOF/reset/timeout. EOF cleanly between frames is reported as NotFound so
/// callers can distinguish an orderly close from a mid-frame tear.
Status ReadExact(int fd, size_t n, std::string* out);

/// Writes one framed payload to `fd`.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd` into `*payload` (header then body, CRC
/// verified). NotFound on clean EOF before any header byte; IOError on
/// mid-frame EOF or socket error; Corruption on CRC mismatch; OutOfRange
/// on an oversized declared length (the declared bytes are not drained).
Status ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload);

}  // namespace sampwh

#endif  // SAMPWH_SERVER_WIRE_H_
