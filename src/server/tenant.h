// Multi-tenant catalog layer of the warehouse server. Tenants are flat
// namespaces: the server maps (tenant, dataset) onto the internal dataset
// key "<tenant>.<dataset>" — tenant ids exclude '.', so the first '.' of a
// key always separates unambiguously, two tenants' same-named datasets can
// never collide in either store backend, and the key stays inside the
// charset ValidateDatasetId allows for file-name stems.
//
// Quotas bound a tenant's stored sample bytes, partition count and dataset
// count. Enforcement is charge-before-mutate: an ingest or roll-in that
// would exceed a quota is rejected with ResourceExhausted before any store
// or catalog state changes, so quota exhaustion never leaves a partial
// roll-in behind. The catalog remembers each charged partition's bytes so
// roll-out and dataset drops credit exactly what was charged.

#ifndef SAMPWH_SERVER_TENANT_H_
#define SAMPWH_SERVER_TENANT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/warehouse/ids.h"

namespace sampwh {

/// Limits for one tenant; 0 means unlimited along that dimension.
struct TenantQuota {
  uint64_t max_bytes = 0;
  uint64_t max_partitions = 0;
  uint64_t max_datasets = 0;
};

/// What the tenant currently holds (as charged through this catalog).
struct TenantUsage {
  uint64_t bytes = 0;
  uint64_t partitions = 0;
  uint64_t datasets = 0;
};

/// Tenant ids name file stems and wire fields: [A-Za-z0-9_-], non-empty,
/// <= 64 bytes. '.' is excluded so the tenant prefix of an internal key
/// parses unambiguously.
Status ValidateTenantId(const std::string& tenant);

/// "<tenant>.<dataset>" — the dataset id the warehouse actually stores.
/// Fails if either part is invalid or the joined key exceeds the dataset-id
/// length bound.
Result<DatasetId> MakeTenantDatasetKey(const std::string& tenant,
                                       const std::string& dataset);

/// Splits an internal key back into (tenant, dataset) at the first '.'.
Status SplitTenantDatasetKey(const DatasetId& key, std::string* tenant,
                             std::string* dataset);

/// Thread-safe quota/usage bookkeeping. The server is the only writer; all
/// mutations go through Charge*/Credit* so usage and per-partition charge
/// records stay consistent.
class TenantCatalog {
 public:
  /// Registers a tenant. AlreadyExists when present.
  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);

  /// Replaces a tenant's quota (usage is untouched; an over-quota tenant
  /// simply cannot grow until usage drops).
  Status SetQuota(const std::string& tenant, const TenantQuota& quota);

  bool HasTenant(const std::string& tenant) const;
  Result<TenantQuota> GetQuota(const std::string& tenant) const;
  Result<TenantUsage> GetUsage(const std::string& tenant) const;
  std::vector<std::string> ListTenants() const;

  /// Charges one dataset creation. ResourceExhausted when the dataset quota
  /// is full; NotFound for an unknown tenant. `force` charges past the
  /// quota (startup reconciliation of pre-existing state, and streaming
  /// partition closes that were gated before the elements were accepted —
  /// usage must reflect ground truth even when it exceeds the quota).
  Status ChargeDataset(const std::string& tenant, bool force = false);
  /// Credits a dropped dataset and every partition charge recorded under
  /// `key` (the internal dataset key).
  void CreditDataset(const std::string& tenant, const DatasetId& key);

  /// Charges one partition of `bytes` stored sample footprint against the
  /// tenant, remembering the charge under (key, id) so the credit on
  /// roll-out is exact. ResourceExhausted when either the byte or the
  /// partition quota would be exceeded; nothing is charged then.
  Status ChargePartition(const std::string& tenant, const DatasetId& key,
                         PartitionId id, uint64_t bytes, bool force = false);
  /// Credits the recorded charge for (key, id); no-op when none exists.
  void CreditPartition(const std::string& tenant, const DatasetId& key,
                       PartitionId id);

  /// Moves a charge recorded under a provisional id to the real partition
  /// id (the roll-in verb charges before the id is allocated, so quota
  /// exhaustion rejects before any state changes).
  void RenamePartitionCharge(const std::string& tenant, const DatasetId& key,
                             PartitionId provisional, PartitionId real);

 private:
  struct TenantState {
    TenantQuota quota;
    TenantUsage usage;
    /// Bytes charged per rolled-in partition, so credits are exact even if
    /// the stored sample is later unreadable.
    std::map<std::pair<DatasetId, PartitionId>, uint64_t> partition_bytes;
  };

  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_TENANT_H_
