#include "src/server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sampwh {

namespace {

uint32_t ReadFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, matching util/serialization
}

}  // namespace

bool IsKnownVerb(uint32_t verb) {
  switch (static_cast<Verb>(verb)) {
    case Verb::kPing:
    case Verb::kServerStats:
    case Verb::kShutdown:
    case Verb::kCreateTenant:
    case Verb::kSetTenantQuota:
    case Verb::kTenantStats:
    case Verb::kListTenants:
    case Verb::kCreateDataset:
    case Verb::kDropDataset:
    case Verb::kListDatasets:
    case Verb::kListPartitions:
    case Verb::kRollIn:
    case Verb::kRollInAt:
    case Verb::kRollOut:
    case Verb::kReplicaRollIn:
    case Verb::kQuery:
    case Verb::kPartitionDigests:
    case Verb::kIngestOpen:
    case Verb::kIngestAppend:
    case Verb::kIngestFlush:
      return true;
  }
  return false;
}

std::string EncodeFrame(std::string_view payload) {
  BinaryWriter writer;
  writer.PutFixed32(static_cast<uint32_t>(payload.size()));
  writer.PutFixed32(Crc32(payload));
  writer.PutRaw(payload.data(), payload.size());
  return writer.Release();
}

FrameDecodeResult DecodeFrame(std::string_view buffer,
                              uint32_t max_frame_bytes,
                              std::string_view* payload, size_t* frame_bytes) {
  if (buffer.size() < kWireFrameHeaderBytes) {
    return FrameDecodeResult::kNeedMoreData;
  }
  const uint32_t length = ReadFixed32(buffer.data());
  const uint32_t crc = ReadFixed32(buffer.data() + 4);
  if (length > max_frame_bytes) return FrameDecodeResult::kOversized;
  if (buffer.size() < kWireFrameHeaderBytes + length) {
    return FrameDecodeResult::kNeedMoreData;
  }
  const std::string_view body = buffer.substr(kWireFrameHeaderBytes, length);
  if (Crc32(body) != crc) return FrameDecodeResult::kBadCrc;
  *payload = body;
  *frame_bytes = kWireFrameHeaderBytes + length;
  return FrameDecodeResult::kOk;
}

void BeginRequest(BinaryWriter* writer, Verb verb,
                  const RequestHeader& header) {
  if (header.deadline_millis == 0 && header.flags == 0) {
    // No header state: stay on the v1 head an old server understands.
    writer->PutFixed32(kWireRequestMagic);
    writer->PutFixed32(static_cast<uint32_t>(verb));
    return;
  }
  writer->PutFixed32(kWireRequestMagicV2);
  writer->PutFixed32(static_cast<uint32_t>(verb));
  BinaryWriter ext;
  ext.PutVarint64(header.deadline_millis);
  ext.PutVarint64(header.flags);
  writer->PutString(ext.Release());
}

Status ParseRequestHead(BinaryReader* reader, uint32_t* verb,
                        RequestHeader* header) {
  *header = RequestHeader{};
  uint32_t magic = 0;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(&magic));
  if (magic != kWireRequestMagic && magic != kWireRequestMagicV2) {
    return Status::InvalidArgument("bad request magic");
  }
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(verb));
  if (magic == kWireRequestMagicV2) {
    std::string ext;
    SAMPWH_RETURN_IF_ERROR(reader->GetString(&ext));
    // Known prefix of the extension; a longer blob from a newer client is
    // fine — unread trailing fields are exactly what "append, never
    // renumber" buys.
    BinaryReader ext_reader(ext);
    SAMPWH_RETURN_IF_ERROR(ext_reader.GetVarint64(&header->deadline_millis));
    SAMPWH_RETURN_IF_ERROR(ext_reader.GetVarint64(&header->flags));
  }
  return Status::OK();
}

void BeginResponse(BinaryWriter* writer, const Status& status) {
  writer->PutFixed32(kWireResponseMagic);
  writer->PutFixed32(static_cast<uint32_t>(status.code()));
  writer->PutString(status.message());
}

Status StatusFromWire(uint32_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal("unknown wire status code " + std::to_string(code) +
                          ": " + message);
}

Status ParseResponseHead(BinaryReader* reader) {
  uint32_t magic = 0;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(&magic));
  if (magic != kWireResponseMagic) {
    return Status::Corruption("bad response magic");
  }
  uint32_t code = 0;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(&code));
  std::string message;
  SAMPWH_RETURN_IF_ERROR(reader->GetString(&message));
  return StatusFromWire(code, std::move(message));
}

Status WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, size_t n, std::string* out) {
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out->data() + got, n - got, 0);
    if (r == 0) {
      return got == 0 ? Status::NotFound("connection closed")
                      : Status::IOError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view payload) {
  return WriteAll(fd, EncodeFrame(payload));
}

Status ReadFrame(int fd, uint32_t max_frame_bytes, std::string* payload) {
  std::string header;
  SAMPWH_RETURN_IF_ERROR(ReadExact(fd, kWireFrameHeaderBytes, &header));
  const uint32_t length = ReadFixed32(header.data());
  const uint32_t crc = ReadFixed32(header.data() + 4);
  if (length > max_frame_bytes) {
    return Status::OutOfRange("frame of " + std::to_string(length) +
                              " bytes exceeds the " +
                              std::to_string(max_frame_bytes) + "-byte bound");
  }
  std::string body;
  const Status read = ReadExact(fd, length, &body);
  if (!read.ok()) {
    // EOF exactly between header and body is still a mid-frame tear.
    return read.IsNotFound() ? Status::IOError(read.message()) : read;
  }
  if (Crc32(body) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  *payload = std::move(body);
  return Status::OK();
}

}  // namespace sampwh
