#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sampwh {

namespace {

void PutScope(BinaryWriter* w, const std::string& tenant,
              const std::string& dataset) {
  w->PutString(tenant);
  w->PutString(dataset);
}

void PutQuota(BinaryWriter* w, const TenantQuota& q) {
  w->PutVarint64(q.max_bytes);
  w->PutVarint64(q.max_partitions);
  w->PutVarint64(q.max_datasets);
}

}  // namespace

WarehouseClient::WarehouseClient(int fd, ClientOptions options)
    : fd_(fd), options_(options) {}

WarehouseClient::~WarehouseClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WarehouseClient>> WarehouseClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError(std::string("connect ") + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.read_timeout_millis > 0) {
    timeval tv{};
    tv.tv_sec = options.read_timeout_millis / 1000;
    tv.tv_usec = (options.read_timeout_millis % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return std::unique_ptr<WarehouseClient>(new WarehouseClient(fd, options));
}

Result<std::string> WarehouseClient::Call(Verb verb, std::string_view body) {
  if (!broken_.ok()) return broken_;
  BinaryWriter req;
  BeginRequest(&req, verb);
  req.PutRaw(body.data(), body.size());
  Status st = WriteFrame(fd_, req.Release());
  if (!st.ok()) {
    broken_ = st;
    return st;
  }
  std::string payload;
  st = ReadFrame(fd_, options_.max_frame_bytes, &payload);
  if (!st.ok()) {
    // Clean EOF here means the server closed on us mid-conversation.
    broken_ = st.IsNotFound() ? Status::IOError("server closed connection")
                              : st;
    return broken_;
  }
  BinaryReader reader(payload);
  SAMPWH_RETURN_IF_ERROR(ParseResponseHead(&reader));
  std::string out(payload.substr(payload.size() - reader.remaining()));
  return out;
}

Result<std::string> WarehouseClient::Ping() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string body, Call(Verb::kPing, {}));
  BinaryReader reader(body);
  std::string banner;
  SAMPWH_RETURN_IF_ERROR(reader.GetString(&banner));
  return banner;
}

Result<RemoteServerStats> WarehouseClient::ServerStats() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string body,
                          Call(Verb::kServerStats, {}));
  BinaryReader reader(body);
  RemoteServerStats s;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.connections_accepted));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.connections_dropped));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.requests_served));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.error_responses));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.protocol_errors));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.num_datasets));
  return s;
}

Status WarehouseClient::Shutdown() {
  return Call(Verb::kShutdown, {}).status();
}

Status WarehouseClient::CreateTenant(const std::string& tenant,
                                     const TenantQuota& quota) {
  BinaryWriter body;
  body.PutString(tenant);
  PutQuota(&body, quota);
  return Call(Verb::kCreateTenant, body.Release()).status();
}

Status WarehouseClient::SetTenantQuota(const std::string& tenant,
                                       const TenantQuota& quota) {
  BinaryWriter body;
  body.PutString(tenant);
  PutQuota(&body, quota);
  return Call(Verb::kSetTenantQuota, body.Release()).status();
}

Result<TenantStats> WarehouseClient::GetTenantStats(
    const std::string& tenant) {
  BinaryWriter body;
  body.PutString(tenant);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kTenantStats, body.Release()));
  BinaryReader reader(resp);
  TenantStats stats;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_bytes));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_partitions));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_datasets));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.bytes));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.partitions));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.datasets));
  return stats;
}

Result<std::vector<std::string>> WarehouseClient::ListTenants() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListTenants, {}));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    SAMPWH_RETURN_IF_ERROR(reader.GetString(&name));
    names.push_back(std::move(name));
  }
  return names;
}

Status WarehouseClient::CreateDataset(const std::string& tenant,
                                      const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return Call(Verb::kCreateDataset, body.Release()).status();
}

Status WarehouseClient::DropDataset(const std::string& tenant,
                                    const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return Call(Verb::kDropDataset, body.Release()).status();
}

Result<std::vector<std::string>> WarehouseClient::ListDatasets(
    const std::string& tenant) {
  BinaryWriter body;
  body.PutString(tenant);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListDatasets, body.Release()));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    SAMPWH_RETURN_IF_ERROR(reader.GetString(&name));
    names.push_back(std::move(name));
  }
  return names;
}

Result<std::vector<PartitionInfo>> WarehouseClient::ListPartitions(
    const std::string& tenant, const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListPartitions, body.Release()));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<PartitionInfo> parts;
  parts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PartitionInfo info;
    uint64_t phase = 0;
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.id));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.parent_size));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.sample_size));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&phase));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.min_timestamp));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.max_timestamp));
    info.phase = static_cast<SamplePhase>(phase);
    parts.push_back(info);
  }
  return parts;
}

Result<PartitionId> WarehouseClient::RollIn(const std::string& tenant,
                                            const std::string& dataset,
                                            const PartitionSample& sample,
                                            uint64_t min_timestamp,
                                            uint64_t max_timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(min_timestamp);
  body.PutVarint64(max_timestamp);
  BinaryWriter blob;
  sample.SerializeTo(&blob);
  body.PutString(blob.Release());
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kRollIn, body.Release()));
  BinaryReader reader(resp);
  uint64_t id = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&id));
  return id;
}

Result<PartitionId> WarehouseClient::RollInAt(const std::string& tenant,
                                              const std::string& dataset,
                                              PartitionId id,
                                              const PartitionSample& sample,
                                              uint64_t min_timestamp,
                                              uint64_t max_timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(id);
  body.PutVarint64(min_timestamp);
  body.PutVarint64(max_timestamp);
  BinaryWriter blob;
  sample.SerializeTo(&blob);
  body.PutString(blob.Release());
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kRollInAt, body.Release()));
  BinaryReader reader(resp);
  uint64_t placed = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&placed));
  return placed;
}

Status WarehouseClient::RollOut(const std::string& tenant,
                                const std::string& dataset, PartitionId id) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(id);
  return Call(Verb::kRollOut, body.Release()).status();
}

Result<PartitionSample> WarehouseClient::Query(
    const std::string& tenant, const std::string& dataset,
    const std::vector<PartitionId>& ids) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(ids.size());
  for (const PartitionId id : ids) body.PutVarint64(id);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kQuery, body.Release()));
  BinaryReader reader(resp);
  std::string blob;
  SAMPWH_RETURN_IF_ERROR(reader.GetString(&blob));
  BinaryReader sample_reader(blob);
  return PartitionSample::DeserializeFrom(&sample_reader);
}

Result<IngestAck> WarehouseClient::IngestCall(Verb verb,
                                              std::string_view body) {
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp, Call(verb, body));
  BinaryReader reader(resp);
  IngestAck ack;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ack.next_sequence));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ack.partitions_rolled_in));
  return ack;
}

Result<IngestAck> WarehouseClient::IngestOpen(const std::string& tenant,
                                              const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return IngestCall(Verb::kIngestOpen, body.Release());
}

Result<IngestAck> WarehouseClient::IngestAppend(
    const std::string& tenant, const std::string& dataset, uint64_t sequence,
    const std::vector<Value>& values, uint64_t timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(sequence);
  body.PutVarint64(timestamp);
  body.PutVarint64(values.size());
  for (const Value v : values) body.PutVarintSigned64(v);
  return IngestCall(Verb::kIngestAppend, body.Release());
}

Result<IngestAck> WarehouseClient::IngestFlush(const std::string& tenant,
                                               const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return IngestCall(Verb::kIngestFlush, body.Release());
}

}  // namespace sampwh
