#include "src/server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace sampwh {

namespace {

void PutScope(BinaryWriter* w, const std::string& tenant,
              const std::string& dataset) {
  w->PutString(tenant);
  w->PutString(dataset);
}

void PutQuota(BinaryWriter* w, const TenantQuota& q) {
  w->PutVarint64(q.max_bytes);
  w->PutVarint64(q.max_partitions);
  w->PutVarint64(q.max_datasets);
}

/// Verbs the retry driver may transparently re-attempt after a transport
/// failure. Reads and listings are naturally idempotent; the streaming
/// ingest verbs are idempotent by construction (the server's sequence
/// watermark acknowledges and skips re-driven batches). Roll-ins, admin
/// mutations and shutdown are NOT here: a lost response leaves their
/// outcome ambiguous, and a blind re-drive could duplicate a partition.
bool IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kPing:
    case Verb::kServerStats:
    case Verb::kTenantStats:
    case Verb::kListTenants:
    case Verb::kListDatasets:
    case Verb::kListPartitions:
    case Verb::kQuery:
    case Verb::kPartitionDigests:
    case Verb::kIngestOpen:
    case Verb::kIngestAppend:
    case Verb::kIngestFlush:
    // Replica placement is digest-idempotent by design: an existing copy
    // with matching content acks as a no-op, so a re-driven write after a
    // lost response converges instead of duplicating.
    case Verb::kReplicaRollIn:
      return true;
    case Verb::kShutdown:
    case Verb::kCreateTenant:
    case Verb::kSetTenantQuota:
    case Verb::kCreateDataset:
    case Verb::kDropDataset:
    case Verb::kRollIn:
    case Verb::kRollInAt:
    case Verb::kRollOut:
      return false;
  }
  return false;
}

/// Opens a socket to host:port with the options' connect timeout applied
/// (non-blocking connect + poll, then back to blocking), TCP_NODELAY and
/// the recv timeout set.
Result<int> OpenSocket(const std::string& host, uint16_t port,
                       const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host: " + host);
  }
  const std::string peer = host + ":" + std::to_string(port);

  if (options.connect_timeout_millis > 0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS) {
      const Status st = Status::IOError("connect " + peer + ": " +
                                        std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (rc < 0) {
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, options.connect_timeout_millis);
      if (ready <= 0) {
        ::close(fd);
        return Status::DeadlineExceeded(
            "connect " + peer + ": timed out after " +
            std::to_string(options.connect_timeout_millis) + " ms");
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        ::close(fd);
        return Status::IOError("connect " + peer + ": " +
                               std::strerror(soerr));
      }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for request IO
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    const Status st =
        Status::IOError("connect " + peer + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.read_timeout_millis > 0) {
    timeval tv{};
    tv.tv_sec = options.read_timeout_millis / 1000;
    tv.tv_usec = (options.read_timeout_millis % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

}  // namespace

WarehouseClient::WarehouseClient(int fd, std::string host, uint16_t port,
                                 ClientOptions options)
    : fd_(fd),
      host_(std::move(host)),
      port_(port),
      options_(options),
      deadline_millis_(options.deadline_millis),
      jitter_rng_(options.seed, /*stream=*/0x524a) {}

WarehouseClient::~WarehouseClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WarehouseClient>> WarehouseClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  SAMPWH_ASSIGN_OR_RETURN(const int fd, OpenSocket(host, port, options));
  return std::unique_ptr<WarehouseClient>(
      new WarehouseClient(fd, host, port, options));
}

std::unique_ptr<WarehouseClient> WarehouseClient::Open(const std::string& host,
                                                       uint16_t port,
                                                       ClientOptions options) {
  return std::unique_ptr<WarehouseClient>(
      new WarehouseClient(-1, host, port, options));
}

Status WarehouseClient::Reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  SAMPWH_ASSIGN_OR_RETURN(fd_, OpenSocket(host_, port_, options_));
  broken_ = Status::OK();
  stats_.reconnects++;
  return Status::OK();
}

bool WarehouseClient::breaker_open() const {
  return options_.breaker_failure_threshold > 0 &&
         SteadyNow() < breaker_open_until_;
}

void WarehouseClient::NoteTransportFailure() {
  stats_.transport_errors++;
  if (options_.breaker_failure_threshold == 0) return;
  if (++consecutive_failures_ >= options_.breaker_failure_threshold) {
    breaker_open_until_ =
        SteadyNow() +
        std::chrono::milliseconds(options_.breaker_open_millis);
    stats_.breaker_open_total++;
    // A half-open probe that fails re-opens from a fresh streak.
    consecutive_failures_ = 0;
  }
}

void WarehouseClient::NoteTransportSuccess() {
  consecutive_failures_ = 0;
  breaker_open_until_ = SteadyTime::min();
}

Result<std::string> WarehouseClient::CallOnce(Verb verb,
                                              std::string_view body) {
  BinaryWriter req;
  RequestHeader header;
  header.deadline_millis = deadline_millis_;
  header.flags = request_flags_;
  BeginRequest(&req, verb, header);
  req.PutRaw(body.data(), body.size());
  Status st = WriteFrame(fd_, req.Release());
  if (!st.ok()) {
    broken_ = st;
    return st;
  }
  std::string payload;
  st = ReadFrame(fd_, options_.max_frame_bytes, &payload);
  if (!st.ok()) {
    // Clean EOF here means the server closed on us mid-conversation.
    broken_ = st.IsNotFound() ? Status::IOError("server closed connection")
                              : st;
    return broken_;
  }
  BinaryReader reader(payload);
  SAMPWH_RETURN_IF_ERROR(ParseResponseHead(&reader));
  std::string out(payload.substr(payload.size() - reader.remaining()));
  return out;
}

Result<std::string> WarehouseClient::Call(Verb verb, std::string_view body) {
  // Fail fast while the breaker is open: a known-down peer should cost a
  // map probe, not a connect timeout. Once the open window lapses the next
  // call is the half-open probe.
  if (breaker_open()) {
    return Status::Unavailable("circuit breaker open to " + host_ + ":" +
                               std::to_string(port_));
  }

  const uint32_t attempts =
      IsIdempotent(verb) ? options_.max_retries + 1 : 1;
  uint64_t backoff = options_.backoff_initial_millis;
  Status last = Status::OK();
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries_attempted++;
      // Seeded jitter in [backoff/2, backoff]: staggers a thundering herd
      // of retrying clients while staying reproducible from the seed.
      const uint64_t low = backoff / 2;
      const uint64_t sleep_ms = low + jitter_rng_.UniformInt(backoff - low + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff = std::min(backoff * 2, options_.backoff_max_millis);
      if (breaker_open()) break;  // opened by the previous failed attempt
    }
    if (!broken_.ok() || fd_ < 0) {
      last = Reconnect();
      if (!last.ok()) {
        broken_ = last;
        NoteTransportFailure();
        continue;
      }
    }
    Result<std::string> result = CallOnce(verb, body);
    if (broken_.ok()) {
      // The exchange completed at the transport level; result may still be
      // a structured server error, which is the caller's to interpret.
      NoteTransportSuccess();
      return result;
    }
    last = result.status();
    NoteTransportFailure();
  }
  if (last.ok()) {
    // Every attempt was consumed by the breaker gate.
    return Status::Unavailable("circuit breaker open to " + host_ + ":" +
                               std::to_string(port_));
  }
  return last;
}

Result<std::string> WarehouseClient::Ping() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string body, Call(Verb::kPing, {}));
  BinaryReader reader(body);
  std::string banner;
  SAMPWH_RETURN_IF_ERROR(reader.GetString(&banner));
  return banner;
}

Result<RemoteServerStats> WarehouseClient::ServerStats() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string body,
                          Call(Verb::kServerStats, {}));
  BinaryReader reader(body);
  RemoteServerStats s;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.connections_accepted));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.connections_dropped));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.requests_served));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.error_responses));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.protocol_errors));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.num_datasets));
  // Fields appended after v1: absent when the server predates them.
  if (!reader.AtEnd()) {
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.connections_shed));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.deadlines_exceeded));
  }
  // Replication counters, appended after v2.
  if (!reader.AtEnd()) {
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.replica_writes));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.failover_reads));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.scrub_rounds));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.partitions_healed));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&s.digest_mismatches));
  }
  return s;
}

Status WarehouseClient::Shutdown() {
  return Call(Verb::kShutdown, {}).status();
}

Status WarehouseClient::CreateTenant(const std::string& tenant,
                                     const TenantQuota& quota) {
  BinaryWriter body;
  body.PutString(tenant);
  PutQuota(&body, quota);
  return Call(Verb::kCreateTenant, body.Release()).status();
}

Status WarehouseClient::SetTenantQuota(const std::string& tenant,
                                       const TenantQuota& quota) {
  BinaryWriter body;
  body.PutString(tenant);
  PutQuota(&body, quota);
  return Call(Verb::kSetTenantQuota, body.Release()).status();
}

Result<TenantStats> WarehouseClient::GetTenantStats(
    const std::string& tenant) {
  BinaryWriter body;
  body.PutString(tenant);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kTenantStats, body.Release()));
  BinaryReader reader(resp);
  TenantStats stats;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_bytes));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_partitions));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.quota.max_datasets));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.bytes));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.partitions));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&stats.usage.datasets));
  return stats;
}

Result<std::vector<std::string>> WarehouseClient::ListTenants() {
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListTenants, {}));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    SAMPWH_RETURN_IF_ERROR(reader.GetString(&name));
    names.push_back(std::move(name));
  }
  return names;
}

Status WarehouseClient::CreateDataset(const std::string& tenant,
                                      const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return Call(Verb::kCreateDataset, body.Release()).status();
}

Status WarehouseClient::DropDataset(const std::string& tenant,
                                    const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return Call(Verb::kDropDataset, body.Release()).status();
}

Result<std::vector<std::string>> WarehouseClient::ListDatasets(
    const std::string& tenant) {
  BinaryWriter body;
  body.PutString(tenant);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListDatasets, body.Release()));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    SAMPWH_RETURN_IF_ERROR(reader.GetString(&name));
    names.push_back(std::move(name));
  }
  return names;
}

Result<std::vector<PartitionInfo>> WarehouseClient::ListPartitions(
    const std::string& tenant, const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kListPartitions, body.Release()));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<PartitionInfo> parts;
  parts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PartitionInfo info;
    uint64_t phase = 0;
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.id));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.parent_size));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.sample_size));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&phase));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.min_timestamp));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&info.max_timestamp));
    info.phase = static_cast<SamplePhase>(phase);
    parts.push_back(info);
  }
  return parts;
}

Result<PartitionId> WarehouseClient::RollIn(const std::string& tenant,
                                            const std::string& dataset,
                                            const PartitionSample& sample,
                                            uint64_t min_timestamp,
                                            uint64_t max_timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(min_timestamp);
  body.PutVarint64(max_timestamp);
  BinaryWriter blob;
  sample.SerializeTo(&blob);
  body.PutString(blob.Release());
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kRollIn, body.Release()));
  BinaryReader reader(resp);
  uint64_t id = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&id));
  return id;
}

Result<PartitionId> WarehouseClient::RollInAt(const std::string& tenant,
                                              const std::string& dataset,
                                              PartitionId id,
                                              const PartitionSample& sample,
                                              uint64_t min_timestamp,
                                              uint64_t max_timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(id);
  body.PutVarint64(min_timestamp);
  body.PutVarint64(max_timestamp);
  BinaryWriter blob;
  sample.SerializeTo(&blob);
  body.PutString(blob.Release());
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kRollInAt, body.Release()));
  BinaryReader reader(resp);
  uint64_t placed = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&placed));
  return placed;
}

Result<PartitionId> WarehouseClient::ReplicaRollIn(
    const std::string& tenant, const std::string& dataset, PartitionId id,
    const PartitionSample& sample, uint64_t min_timestamp,
    uint64_t max_timestamp, bool heal) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(id);
  body.PutVarint64(min_timestamp);
  body.PutVarint64(max_timestamp);
  body.PutVarint64(heal ? kReplicaRollInFlagHeal : 0);
  BinaryWriter blob;
  sample.SerializeTo(&blob);
  body.PutString(blob.Release());
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kReplicaRollIn, body.Release()));
  BinaryReader reader(resp);
  uint64_t placed = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&placed));
  return placed;
}

Result<std::vector<PartitionDigest>> WarehouseClient::PartitionDigests(
    const std::string& tenant, const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kPartitionDigests, body.Release()));
  BinaryReader reader(resp);
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&n));
  std::vector<PartitionDigest> digests;
  digests.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PartitionDigest d;
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&d.id));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&d.digest));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&d.min_timestamp));
    SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&d.max_timestamp));
    digests.push_back(d);
  }
  return digests;
}

Status WarehouseClient::RollOut(const std::string& tenant,
                                const std::string& dataset, PartitionId id) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(id);
  return Call(Verb::kRollOut, body.Release()).status();
}

Result<PartitionSample> WarehouseClient::Query(
    const std::string& tenant, const std::string& dataset,
    const std::vector<PartitionId>& ids) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(ids.size());
  for (const PartitionId id : ids) body.PutVarint64(id);
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp,
                          Call(Verb::kQuery, body.Release()));
  BinaryReader reader(resp);
  std::string blob;
  SAMPWH_RETURN_IF_ERROR(reader.GetString(&blob));
  BinaryReader sample_reader(blob);
  return PartitionSample::DeserializeFrom(&sample_reader);
}

Result<IngestAck> WarehouseClient::IngestCall(Verb verb,
                                              std::string_view body) {
  SAMPWH_ASSIGN_OR_RETURN(const std::string resp, Call(verb, body));
  BinaryReader reader(resp);
  IngestAck ack;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ack.next_sequence));
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&ack.partitions_rolled_in));
  return ack;
}

Result<IngestAck> WarehouseClient::IngestOpen(const std::string& tenant,
                                              const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return IngestCall(Verb::kIngestOpen, body.Release());
}

Result<IngestAck> WarehouseClient::IngestAppend(
    const std::string& tenant, const std::string& dataset, uint64_t sequence,
    const std::vector<Value>& values, uint64_t timestamp) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  body.PutVarint64(sequence);
  body.PutVarint64(timestamp);
  body.PutVarint64(values.size());
  for (const Value v : values) body.PutVarintSigned64(v);
  return IngestCall(Verb::kIngestAppend, body.Release());
}

Result<IngestAck> WarehouseClient::IngestFlush(const std::string& tenant,
                                               const std::string& dataset) {
  BinaryWriter body;
  PutScope(&body, tenant, dataset);
  return IngestCall(Verb::kIngestFlush, body.Release());
}

}  // namespace sampwh
