#include "src/server/coordinator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/util/shard_router.h"
#include "src/warehouse/merge_memo.h"

namespace sampwh {

namespace {

/// Errors that mean "this node is unreachable" (as opposed to a structured
/// answer the node computed): transport failures and the breaker's
/// fail-fast refusal.
bool IsNodeDown(const Status& st) {
  return st.IsIOError() || st.IsUnavailable() || st.IsDeadlineExceeded();
}

/// Applies a per-query deadline to every node client for the duration of a
/// query, restoring the previous deadlines after.
class ScopedClientDeadlines {
 public:
  ScopedClientDeadlines(
      std::vector<std::unique_ptr<WarehouseClient>>* clients, uint64_t millis)
      : clients_(clients) {
    if (millis == 0) return;
    previous_.reserve(clients_->size());
    for (auto& client : *clients_) {
      previous_.push_back(client->deadline_millis());
      client->set_deadline_millis(millis);
    }
  }
  ~ScopedClientDeadlines() {
    for (size_t i = 0; i < previous_.size(); ++i) {
      (*clients_)[i]->set_deadline_millis(previous_[i]);
    }
  }

 private:
  std::vector<std::unique_ptr<WarehouseClient>>* clients_;
  std::vector<uint64_t> previous_;
};

}  // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.cache_alias_tables) {
    options_.merge.alias_cache = &alias_cache_;
  }
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Connect(
    const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("coordinator needs at least one node");
  }
  std::unique_ptr<ShardCoordinator> coord(
      new ShardCoordinator(std::move(options)));
  for (const ShardNodeAddress& node : nodes) {
    if (coord->options_.tolerate_unreachable) {
      // Lazy client: a node down right now connects on first use; until
      // then its breaker fails calls fast and the degraded query path
      // routes around it.
      coord->clients_.push_back(WarehouseClient::Open(
          node.host, node.port, coord->options_.client));
      continue;
    }
    SAMPWH_ASSIGN_OR_RETURN(
        std::unique_ptr<WarehouseClient> client,
        WarehouseClient::Connect(node.host, node.port,
                                 coord->options_.client));
    coord->clients_.push_back(std::move(client));
  }
  return coord;
}

size_t ShardCoordinator::ShardOf(const std::string& tenant,
                                 const std::string& dataset,
                                 PartitionId id) const {
  const ShardRouter router(tenant + "." + dataset, clients_.size());
  return router.ShardFor(id);
}

size_t ShardCoordinator::replication_factor() const {
  const size_t r = options_.replication_factor == 0
                       ? 1
                       : static_cast<size_t>(options_.replication_factor);
  return std::min(r, clients_.size());
}

std::vector<size_t> ShardCoordinator::OwnersOf(size_t primary) const {
  const size_t r = replication_factor();
  std::vector<size_t> owners;
  owners.reserve(r);
  for (size_t k = 0; k < r; ++k) {
    owners.push_back((primary + k) % clients_.size());
  }
  return owners;
}

Status ShardCoordinator::CreateTenant(const std::string& tenant,
                                      const TenantQuota& quota) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateTenant(tenant, quota));
  }
  return Status::OK();
}

Status ShardCoordinator::CreateDataset(const std::string& tenant,
                                       const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateDataset(tenant, dataset));
  }
  return Status::OK();
}

Status ShardCoordinator::DropDataset(const std::string& tenant,
                                     const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->DropDataset(tenant, dataset));
  }
  {
    SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                            MakeTenantDatasetKey(tenant, dataset));
    next_id_.erase(key);
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> ShardCoordinator::ListAllPartitions(
    const std::string& tenant, const std::string& dataset) {
  return ListPartitionsDegraded(tenant, dataset, /*missing_shards=*/nullptr);
}

Result<std::vector<PartitionId>> ShardCoordinator::ListPartitionsDegraded(
    const std::string& tenant, const std::string& dataset,
    std::vector<size_t>* missing_shards) {
  std::vector<PartitionId> ids;
  std::vector<size_t> unreachable;
  Status down_failure = Status::OK();
  for (size_t shard = 0; shard < clients_.size(); ++shard) {
    const Result<std::vector<PartitionInfo>> parts =
        clients_[shard]->ListPartitions(tenant, dataset);
    if (!parts.ok()) {
      if (IsNodeDown(parts.status())) {
        unreachable.push_back(shard);
        if (down_failure.ok()) down_failure = parts.status();
        continue;
      }
      return parts.status();
    }
    for (const PartitionInfo& info : parts.value()) ids.push_back(info.id);
  }
  // The union over the reachable nodes is the COMPLETE inventory as long
  // as every owner set keeps a reachable member — replication covers node
  // loss at listing time exactly as it does mid-merge. Only when a full
  // owner set is unreachable can ids be invisible: strict listing then
  // fails, degraded listing reports the missing nodes and carries on.
  for (size_t primary = 0; primary < clients_.size(); ++primary) {
    bool all_down = true;
    for (const size_t owner : OwnersOf(primary)) {
      if (std::find(unreachable.begin(), unreachable.end(), owner) ==
          unreachable.end()) {
        all_down = false;
        break;
      }
    }
    if (all_down) {
      if (missing_shards == nullptr) return down_failure;
      break;
    }
  }
  if (missing_shards != nullptr) {
    missing_shards->insert(missing_shards->end(), unreachable.begin(),
                           unreachable.end());
  }
  std::sort(ids.begin(), ids.end());
  // With replication every id is listed by each reachable owner; the union
  // must collapse to one entry per id.
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Result<PartitionId> ShardCoordinator::RollIn(const std::string& tenant,
                                             const std::string& dataset,
                                             const PartitionSample& sample,
                                             uint64_t min_timestamp,
                                             uint64_t max_timestamp) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  auto it = next_id_.find(key);
  if (it == next_id_.end()) {
    // Seed the global allocator ahead of whatever the nodes restored.
    SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionId> existing,
                            ListAllPartitions(tenant, dataset));
    const PartitionId next = existing.empty() ? 0 : existing.back() + 1;
    it = next_id_.emplace(key, next).first;
  }
  const PartitionId id = it->second;
  // The id is consumed even when the write fails: ids are not required to
  // be dense, and retrying a DIFFERENT id keeps a down primary from
  // wedging every later write behind the one id it owns.
  it->second = id + 1;
  const std::vector<size_t> owners = OwnersOf(ShardOf(tenant, dataset, id));
  // The primary is the single quota-admission point: its RollInAt enforces
  // the tenant's quotas, and a refusal fails the whole write before any
  // replica copy exists (charge-once semantics).
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionId placed,
      clients_[owners[0]]->RollInAt(tenant, dataset, id, sample,
                                    min_timestamp, max_timestamp));
  size_t acks = 1;
  Status replica_failure = Status::OK();
  for (size_t k = 1; k < owners.size(); ++k) {
    const Status st = clients_[owners[k]]
                          ->ReplicaRollIn(tenant, dataset, id, sample,
                                          min_timestamp, max_timestamp)
                          .status();
    if (st.ok()) {
      ++acks;
    } else if (replica_failure.ok()) {
      replica_failure = st;
    }
  }
  const size_t quorum =
      options_.write_quorum == 0
          ? owners.size()
          : std::min<size_t>(options_.write_quorum, owners.size());
  if (acks < quorum) {
    // Best-effort rollback of the copies that did land, so a re-driven
    // write can reuse the id. A copy that survives a failed rollback is
    // harmless: the retry's ReplicaRollIn is digest-idempotent, and an
    // abandoned id is completed-or-removed by the next scrub round.
    for (const size_t owner : owners) {
      (void)clients_[owner]->RollOut(tenant, dataset, id);
    }
    return Status::Unavailable(
        "write quorum not met: " + std::to_string(acks) + " of " +
        std::to_string(quorum) + " owner acks (" +
        replica_failure.ToString() + ")");
  }
  return placed;
}

Status ShardCoordinator::RollOut(const std::string& tenant,
                                 const std::string& dataset, PartitionId id) {
  // Every owner drops its copy. NotFound is fine (a replica that never got
  // the copy, or a quarantined file already moved aside).
  Status first_failure = Status::OK();
  for (const size_t owner : OwnersOf(ShardOf(tenant, dataset, id))) {
    const Status st = clients_[owner]->RollOut(tenant, dataset, id);
    if (!st.ok() && !st.IsNotFound() && first_failure.ok()) {
      first_failure = st;
    }
  }
  return first_failure;
}

Result<PartitionSample> ShardCoordinator::Query(const std::string& tenant,
                                                const std::string& dataset,
                                                std::vector<PartitionId> ids) {
  SAMPWH_ASSIGN_OR_RETURN(
      ShardQueryResult result,
      QueryWithOptions(tenant, dataset, std::move(ids), QueryOptions{}));
  return std::move(result.sample);
}

Result<ShardQueryResult> ShardCoordinator::QueryWithOptions(
    const std::string& tenant, const std::string& dataset,
    std::vector<PartitionId> ids, const QueryOptions& query_options) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  const ScopedClientDeadlines deadlines(&clients_,
                                        query_options.deadline_millis);
  const bool all_partitions = ids.empty();
  ShardQueryResult result;
  std::set<size_t> down;

  if (all_partitions) {
    std::vector<size_t> missing;
    SAMPWH_ASSIGN_OR_RETURN(
        ids, ListPartitionsDegraded(
                 tenant, dataset,
                 query_options.allow_partial ? &missing : nullptr));
    down.insert(missing.begin(), missing.end());
  }
  if (ids.empty() && down.empty()) {
    return Status::InvalidArgument("no partitions to merge");
  }
  // Canonical node identity, exactly as the warehouse's memoized path
  // sorts before building the tree.
  std::sort(ids.begin(), ids.end());
  const std::vector<PartitionId> requested = ids;
  const uint64_t fingerprint = MergeOptionsFingerprint(options_.merge);

  // An id is servable while ANY of its owners is reachable — replication
  // factor R tolerates R-1 losses without dropping a single id.
  const auto all_owners_down = [&](size_t primary) {
    for (const size_t owner : OwnersOf(primary)) {
      if (down.count(owner) == 0) return false;
    }
    return true;
  };

  // Degraded restart loop: the merge tree's shape (splits, node RNGs) is a
  // pure function of the id set, so DROPPING ids mid-merge cannot be
  // patched into the partially-built tree — the query restarts over the
  // surviving ids, which is exactly the tree a single node holding only
  // those ids would build. Mere node loss does NOT restart: a span whose
  // owner dies mid-merge is re-driven on the next owner inside MergeTree
  // and the bytes are identical. The loop only turns when a span's entire
  // owner set is gone; each turn removes at least one primary's ids, so it
  // is bounded by the node count.
  while (true) {
    std::vector<PartitionId> live_ids;
    std::vector<size_t> primaries;
    std::vector<PartitionId> dropped_ids;
    live_ids.reserve(ids.size());
    primaries.reserve(ids.size());
    for (const PartitionId id : ids) {
      const size_t primary = ShardOf(tenant, dataset, id);
      if (all_owners_down(primary)) {
        dropped_ids.push_back(id);
        continue;
      }
      live_ids.push_back(id);
      primaries.push_back(primary);
    }
    if (live_ids.empty()) {
      return Status::Unavailable(
          "no node holding requested partitions is reachable (" +
          std::to_string(down.size()) + " of " +
          std::to_string(clients_.size()) + " nodes down)");
    }

    size_t failed_primary = clients_.size();
    Result<PartitionSample> merged =
        MergeTree(tenant, dataset, key, live_ids, primaries, fingerprint,
                  &down, &failed_primary);
    if (merged.ok()) {
      result.sample = std::move(merged).value();
      // Partial means ids are actually absent from the answer: dropped
      // because their whole owner set is down, or (all-partitions only)
      // potentially invisible because a full owner set was already
      // unreachable at listing time. Surviving a node loss via a replica
      // is NOT partial — the answer is the complete, exact one.
      bool inventory_unknowable = false;
      if (all_partitions) {
        for (size_t p = 0; p < clients_.size(); ++p) {
          if (all_owners_down(p)) inventory_unknowable = true;
        }
      }
      result.partial = !dropped_ids.empty() || inventory_unknowable;
      if (result.partial) {
        result.missing_shards.assign(down.begin(), down.end());
        if (!all_partitions) result.missing_ids = std::move(dropped_ids);
        partial_queries_served_++;
      }
      return result;
    }
    if (!query_options.allow_partial || !IsNodeDown(merged.status()) ||
        failed_primary >= clients_.size()) {
      return merged.status();
    }
    // The span under failed_primary exhausted every owner; mark the whole
    // owner set down so the next round drops exactly those ids.
    for (const size_t owner : OwnersOf(failed_primary)) down.insert(owner);
  }
}

Result<ScrubReport> ShardCoordinator::ScrubDataset(const std::string& tenant,
                                                   const std::string& dataset) {
  ScrubReport report;
  // Phase 1: every reachable node lists the content digest of each
  // readable copy it holds. A corrupt copy is quarantined by the scan
  // itself (the store's CRC envelope fails) and simply absent from the
  // listing — from here on, "corrupt" and "missing" are one case.
  std::vector<std::map<PartitionId, PartitionDigest>> listings(
      clients_.size());
  std::vector<bool> reachable(clients_.size(), false);
  size_t reachable_count = 0;
  for (size_t node = 0; node < clients_.size(); ++node) {
    Result<std::vector<PartitionDigest>> digests =
        clients_[node]->PartitionDigests(tenant, dataset);
    if (!digests.ok()) {
      if (IsNodeDown(digests.status())) continue;  // skip this round
      return digests.status();
    }
    reachable[node] = true;
    ++reachable_count;
    for (const PartitionDigest& d : digests.value()) {
      listings[node][d.id] = d;
    }
  }
  if (reachable_count == 0) {
    return Status::Unavailable("no node reachable for scrub");
  }

  // Phase 2: per partition, elect the authoritative digest and repair
  // every reachable owner that disagrees or lacks a copy.
  std::set<PartitionId> all_ids;
  for (const auto& listing : listings) {
    for (const auto& [id, _] : listing) all_ids.insert(id);
  }
  for (const PartitionId id : all_ids) {
    ++report.partitions_scanned;
    const std::vector<size_t> owners = OwnersOf(ShardOf(tenant, dataset, id));

    // Majority digest among readable copies wins; a tie resolves to the
    // copy on the lowest-index owner (deterministic, and in the common
    // two-replica split it sides with the primary's bytes).
    std::map<uint64_t, size_t> votes;
    uint64_t authoritative = 0;
    size_t best_votes = 0;
    size_t source_owner = clients_.size();
    for (const size_t owner : owners) {
      if (!reachable[owner]) continue;
      const auto it = listings[owner].find(id);
      if (it == listings[owner].end()) continue;
      const size_t n = ++votes[it->second.digest];
      if (n > best_votes) {
        best_votes = n;
        authoritative = it->second.digest;
      }
    }
    if (best_votes == 0) {
      // Listed somewhere, but no reachable OWNER holds a readable copy —
      // nothing to heal from.
      report.unhealable += 1;
      continue;
    }
    for (const size_t owner : owners) {
      if (!reachable[owner]) continue;
      const auto it = listings[owner].find(id);
      if (it != listings[owner].end() && it->second.digest == authoritative &&
          source_owner == clients_.size()) {
        source_owner = owner;
      }
    }

    // Tally the damage on reachable owners.
    std::vector<size_t> broken;
    for (const size_t owner : owners) {
      if (!reachable[owner]) continue;
      const auto it = listings[owner].find(id);
      if (it == listings[owner].end()) {
        report.replicas_missing += 1;
        broken.push_back(owner);
      } else if (it->second.digest != authoritative) {
        report.digest_mismatches += 1;
        broken.push_back(owner);
      }
    }
    if (broken.empty()) continue;

    // Fetch the healthy bytes once: a single-id query is leaf
    // pass-through, bit-identical to the stored sample.
    const PartitionDigest& source = listings[source_owner].at(id);
    Result<PartitionSample> healthy =
        clients_[source_owner]->Query(tenant, dataset, {id});
    if (!healthy.ok()) {
      report.unhealable += broken.size();
      continue;
    }
    for (const size_t owner : broken) {
      const Status healed =
          clients_[owner]
              ->ReplicaRollIn(tenant, dataset, id, healthy.value(),
                              source.min_timestamp, source.max_timestamp,
                              /*heal=*/true)
              .status();
      if (healed.ok()) {
        report.healed += 1;
        partitions_healed_++;
      } else {
        report.unhealable += 1;
      }
    }
  }
  scrub_rounds_++;
  return report;
}

std::vector<bool> ShardCoordinator::CheckHealth() {
  std::vector<bool> healthy;
  healthy.reserve(clients_.size());
  for (auto& client : clients_) {
    healthy.push_back(client->Ping().ok());
  }
  return healthy;
}

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats s;
  s.partial_queries_served = partial_queries_served_;
  s.failover_reads = failover_reads_;
  s.scrub_rounds = scrub_rounds_;
  s.partitions_healed = partitions_healed_;
  for (const auto& client : clients_) {
    const ClientStatsSnapshot c = client->stats();
    s.retries_attempted += c.retries_attempted;
    s.reconnects += c.reconnects;
    s.breaker_open_total += c.breaker_open_total;
    s.transport_errors += c.transport_errors;
  }
  return s;
}

Result<PartitionSample> ShardCoordinator::QuerySpanWithFailover(
    const std::string& tenant, const std::string& dataset, size_t primary,
    std::span<const PartitionId> ids, std::set<size_t>* down) {
  // Every owner of the span holds the same partitions, and the merge
  // subtree a node builds depends only on the sorted id set — so the bytes
  // are identical no matter which owner serves it. Try owners in order;
  // the primary serves healthy traffic, replicas absorb its failures.
  const std::vector<PartitionId> span(ids.begin(), ids.end());
  Status down_failure = Status::OK();
  Status structured_failure = Status::OK();
  for (const size_t owner : OwnersOf(primary)) {
    if (down->count(owner) != 0) continue;
    WarehouseClient* client = clients_[owner].get();
    if (client->breaker_open()) {
      // Known-down peer: skip to the next owner without burning a call,
      // exactly like the breaker's fail-fast contract.
      down->insert(owner);
      if (down_failure.ok()) {
        down_failure = Status::Unavailable("circuit breaker open to node " +
                                           std::to_string(owner));
      }
      continue;
    }
    const bool failover = owner != primary;
    if (failover) {
      client->set_request_flags(kRequestFlagFailoverRead);
      failover_reads_++;
    }
    Result<PartitionSample> remote = client->Query(tenant, dataset, span);
    if (failover) client->set_request_flags(0);
    if (remote.ok()) return remote;
    if (IsNodeDown(remote.status())) {
      down->insert(owner);
      if (down_failure.ok()) down_failure = remote.status();
    } else {
      // A structured answer (e.g. NotFound from a replica that never got a
      // copy): the node is up but cannot serve this span — try the next
      // owner, and surface this error only if none can.
      structured_failure = remote.status();
    }
  }
  // Prefer reporting unreachability: it is what the degraded restart logic
  // keys on, and a structured error from one stale replica should not mask
  // the fact that the span's owners are gone.
  if (!down_failure.ok()) return down_failure;
  if (!structured_failure.ok()) return structured_failure;
  return Status::Unavailable("no reachable owner for span (primary " +
                             std::to_string(primary) + ")");
}

Result<PartitionSample> ShardCoordinator::MergeTree(
    const std::string& tenant, const std::string& dataset,
    const DatasetId& key, std::span<const PartitionId> ids,
    std::span<const size_t> primaries, uint64_t fingerprint,
    std::set<size_t>* down, size_t* failed_primary) {
  // Maximal push-down: a span wholly under one primary (hence one owner
  // set) is one remote query — the serving node's memoized merge builds
  // the identical subtree (same sorted id set, same floor(n/2) splits,
  // same identity-derived node RNGs).
  const bool single_primary =
      std::all_of(primaries.begin(), primaries.end(),
                  [&](size_t p) { return p == primaries[0]; });
  if (single_primary) {
    Result<PartitionSample> remote =
        QuerySpanWithFailover(tenant, dataset, primaries[0], ids, down);
    if (!remote.ok() && IsNodeDown(remote.status())) {
      *failed_primary = primaries[0];
    }
    return remote;
  }
  const size_t half = ids.size() / 2;
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample left,
      MergeTree(tenant, dataset, key, ids.subspan(0, half),
                primaries.subspan(0, half), fingerprint, down,
                failed_primary));
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample right,
      MergeTree(tenant, dataset, key, ids.subspan(half),
                primaries.subspan(half), fingerprint, down, failed_primary));
  // The same RNG stream this node would consume inside any warehouse with
  // the same seed — the heart of the distributed-exactness contract.
  Pcg64 rng = MergeMemo::NodeRng(options_.seed, key, ids, fingerprint);
  return MergeSamples(left, right, options_.merge, rng);
}

}  // namespace sampwh
