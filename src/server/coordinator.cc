#include "src/server/coordinator.h"

#include <algorithm>
#include <utility>

#include "src/util/shard_router.h"
#include "src/warehouse/merge_memo.h"

namespace sampwh {

ShardCoordinator::ShardCoordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.cache_alias_tables) {
    options_.merge.alias_cache = &alias_cache_;
  }
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Connect(
    const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("coordinator needs at least one node");
  }
  std::unique_ptr<ShardCoordinator> coord(
      new ShardCoordinator(std::move(options)));
  for (const ShardNodeAddress& node : nodes) {
    SAMPWH_ASSIGN_OR_RETURN(
        std::unique_ptr<WarehouseClient> client,
        WarehouseClient::Connect(node.host, node.port,
                                 coord->options_.client));
    coord->clients_.push_back(std::move(client));
  }
  return coord;
}

size_t ShardCoordinator::ShardOf(const std::string& tenant,
                                 const std::string& dataset,
                                 PartitionId id) const {
  const ShardRouter router(tenant + "." + dataset, clients_.size());
  return router.ShardFor(id);
}

Status ShardCoordinator::CreateTenant(const std::string& tenant,
                                      const TenantQuota& quota) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateTenant(tenant, quota));
  }
  return Status::OK();
}

Status ShardCoordinator::CreateDataset(const std::string& tenant,
                                       const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateDataset(tenant, dataset));
  }
  return Status::OK();
}

Status ShardCoordinator::DropDataset(const std::string& tenant,
                                     const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->DropDataset(tenant, dataset));
  }
  {
    SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                            MakeTenantDatasetKey(tenant, dataset));
    next_id_.erase(key);
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> ShardCoordinator::ListAllPartitions(
    const std::string& tenant, const std::string& dataset) {
  std::vector<PartitionId> ids;
  for (auto& client : clients_) {
    SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionInfo> parts,
                            client->ListPartitions(tenant, dataset));
    for (const PartitionInfo& info : parts) ids.push_back(info.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<PartitionId> ShardCoordinator::RollIn(const std::string& tenant,
                                             const std::string& dataset,
                                             const PartitionSample& sample,
                                             uint64_t min_timestamp,
                                             uint64_t max_timestamp) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  auto it = next_id_.find(key);
  if (it == next_id_.end()) {
    // Seed the global allocator ahead of whatever the nodes restored.
    SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionId> existing,
                            ListAllPartitions(tenant, dataset));
    const PartitionId next = existing.empty() ? 0 : existing.back() + 1;
    it = next_id_.emplace(key, next).first;
  }
  const PartitionId id = it->second;
  const size_t shard = ShardOf(tenant, dataset, id);
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionId placed,
      clients_[shard]->RollInAt(tenant, dataset, id, sample, min_timestamp,
                                max_timestamp));
  it->second = id + 1;
  return placed;
}

Status ShardCoordinator::RollOut(const std::string& tenant,
                                 const std::string& dataset, PartitionId id) {
  return clients_[ShardOf(tenant, dataset, id)]->RollOut(tenant, dataset, id);
}

Result<PartitionSample> ShardCoordinator::Query(const std::string& tenant,
                                                const std::string& dataset,
                                                std::vector<PartitionId> ids) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  if (ids.empty()) {
    SAMPWH_ASSIGN_OR_RETURN(ids, ListAllPartitions(tenant, dataset));
  }
  if (ids.empty()) {
    return Status::InvalidArgument("no partitions to merge");
  }
  // Canonical node identity, exactly as the warehouse's memoized path
  // sorts before building the tree.
  std::sort(ids.begin(), ids.end());
  std::vector<size_t> owners;
  owners.reserve(ids.size());
  for (const PartitionId id : ids) {
    owners.push_back(ShardOf(tenant, dataset, id));
  }
  const uint64_t fingerprint = MergeOptionsFingerprint(options_.merge);
  return MergeTree(tenant, dataset, key, ids, owners, fingerprint);
}

Result<PartitionSample> ShardCoordinator::MergeTree(
    const std::string& tenant, const std::string& dataset,
    const DatasetId& key, std::span<const PartitionId> ids,
    std::span<const size_t> owners, uint64_t fingerprint) {
  // Maximal push-down: a span wholly on one shard is one remote query —
  // the node's memoized merge builds the identical subtree (same sorted id
  // set, same floor(n/2) splits, same identity-derived node RNGs).
  const bool single_owner =
      std::all_of(owners.begin(), owners.end(),
                  [&](size_t o) { return o == owners[0]; });
  if (single_owner) {
    return clients_[owners[0]]->Query(
        tenant, dataset, std::vector<PartitionId>(ids.begin(), ids.end()));
  }
  const size_t half = ids.size() / 2;
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample left,
      MergeTree(tenant, dataset, key, ids.subspan(0, half),
                owners.subspan(0, half), fingerprint));
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample right,
      MergeTree(tenant, dataset, key, ids.subspan(half),
                owners.subspan(half), fingerprint));
  // The same RNG stream this node would consume inside any warehouse with
  // the same seed — the heart of the distributed-exactness contract.
  Pcg64 rng = MergeMemo::NodeRng(options_.seed, key, ids, fingerprint);
  return MergeSamples(left, right, options_.merge, rng);
}

}  // namespace sampwh
