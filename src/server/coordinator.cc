#include "src/server/coordinator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/util/shard_router.h"
#include "src/warehouse/merge_memo.h"

namespace sampwh {

namespace {

/// Errors that mean "this node is unreachable" (as opposed to a structured
/// answer the node computed): transport failures and the breaker's
/// fail-fast refusal.
bool IsNodeDown(const Status& st) {
  return st.IsIOError() || st.IsUnavailable() || st.IsDeadlineExceeded();
}

/// Applies a per-query deadline to every node client for the duration of a
/// query, restoring the previous deadlines after.
class ScopedClientDeadlines {
 public:
  ScopedClientDeadlines(
      std::vector<std::unique_ptr<WarehouseClient>>* clients, uint64_t millis)
      : clients_(clients) {
    if (millis == 0) return;
    previous_.reserve(clients_->size());
    for (auto& client : *clients_) {
      previous_.push_back(client->deadline_millis());
      client->set_deadline_millis(millis);
    }
  }
  ~ScopedClientDeadlines() {
    for (size_t i = 0; i < previous_.size(); ++i) {
      (*clients_)[i]->set_deadline_millis(previous_[i]);
    }
  }

 private:
  std::vector<std::unique_ptr<WarehouseClient>>* clients_;
  std::vector<uint64_t> previous_;
};

}  // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.cache_alias_tables) {
    options_.merge.alias_cache = &alias_cache_;
  }
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Connect(
    const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("coordinator needs at least one node");
  }
  std::unique_ptr<ShardCoordinator> coord(
      new ShardCoordinator(std::move(options)));
  for (const ShardNodeAddress& node : nodes) {
    if (coord->options_.tolerate_unreachable) {
      // Lazy client: a node down right now connects on first use; until
      // then its breaker fails calls fast and the degraded query path
      // routes around it.
      coord->clients_.push_back(WarehouseClient::Open(
          node.host, node.port, coord->options_.client));
      continue;
    }
    SAMPWH_ASSIGN_OR_RETURN(
        std::unique_ptr<WarehouseClient> client,
        WarehouseClient::Connect(node.host, node.port,
                                 coord->options_.client));
    coord->clients_.push_back(std::move(client));
  }
  return coord;
}

size_t ShardCoordinator::ShardOf(const std::string& tenant,
                                 const std::string& dataset,
                                 PartitionId id) const {
  const ShardRouter router(tenant + "." + dataset, clients_.size());
  return router.ShardFor(id);
}

Status ShardCoordinator::CreateTenant(const std::string& tenant,
                                      const TenantQuota& quota) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateTenant(tenant, quota));
  }
  return Status::OK();
}

Status ShardCoordinator::CreateDataset(const std::string& tenant,
                                       const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->CreateDataset(tenant, dataset));
  }
  return Status::OK();
}

Status ShardCoordinator::DropDataset(const std::string& tenant,
                                     const std::string& dataset) {
  for (auto& client : clients_) {
    SAMPWH_RETURN_IF_ERROR(client->DropDataset(tenant, dataset));
  }
  {
    SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                            MakeTenantDatasetKey(tenant, dataset));
    next_id_.erase(key);
  }
  return Status::OK();
}

Result<std::vector<PartitionId>> ShardCoordinator::ListAllPartitions(
    const std::string& tenant, const std::string& dataset) {
  return ListPartitionsDegraded(tenant, dataset, /*missing_shards=*/nullptr);
}

Result<std::vector<PartitionId>> ShardCoordinator::ListPartitionsDegraded(
    const std::string& tenant, const std::string& dataset,
    std::vector<size_t>* missing_shards) {
  std::vector<PartitionId> ids;
  for (size_t shard = 0; shard < clients_.size(); ++shard) {
    const Result<std::vector<PartitionInfo>> parts =
        clients_[shard]->ListPartitions(tenant, dataset);
    if (!parts.ok()) {
      if (missing_shards != nullptr && IsNodeDown(parts.status())) {
        missing_shards->push_back(shard);
        continue;
      }
      return parts.status();
    }
    for (const PartitionInfo& info : parts.value()) ids.push_back(info.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<PartitionId> ShardCoordinator::RollIn(const std::string& tenant,
                                             const std::string& dataset,
                                             const PartitionSample& sample,
                                             uint64_t min_timestamp,
                                             uint64_t max_timestamp) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  auto it = next_id_.find(key);
  if (it == next_id_.end()) {
    // Seed the global allocator ahead of whatever the nodes restored.
    SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionId> existing,
                            ListAllPartitions(tenant, dataset));
    const PartitionId next = existing.empty() ? 0 : existing.back() + 1;
    it = next_id_.emplace(key, next).first;
  }
  const PartitionId id = it->second;
  const size_t shard = ShardOf(tenant, dataset, id);
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionId placed,
      clients_[shard]->RollInAt(tenant, dataset, id, sample, min_timestamp,
                                max_timestamp));
  it->second = id + 1;
  return placed;
}

Status ShardCoordinator::RollOut(const std::string& tenant,
                                 const std::string& dataset, PartitionId id) {
  return clients_[ShardOf(tenant, dataset, id)]->RollOut(tenant, dataset, id);
}

Result<PartitionSample> ShardCoordinator::Query(const std::string& tenant,
                                                const std::string& dataset,
                                                std::vector<PartitionId> ids) {
  SAMPWH_ASSIGN_OR_RETURN(
      ShardQueryResult result,
      QueryWithOptions(tenant, dataset, std::move(ids), QueryOptions{}));
  return std::move(result.sample);
}

Result<ShardQueryResult> ShardCoordinator::QueryWithOptions(
    const std::string& tenant, const std::string& dataset,
    std::vector<PartitionId> ids, const QueryOptions& query_options) {
  SAMPWH_ASSIGN_OR_RETURN(const DatasetId key,
                          MakeTenantDatasetKey(tenant, dataset));
  const ScopedClientDeadlines deadlines(&clients_,
                                        query_options.deadline_millis);
  const bool all_partitions = ids.empty();
  ShardQueryResult result;
  std::set<size_t> down;

  if (all_partitions) {
    std::vector<size_t> missing;
    SAMPWH_ASSIGN_OR_RETURN(
        ids, ListPartitionsDegraded(
                 tenant, dataset,
                 query_options.allow_partial ? &missing : nullptr));
    down.insert(missing.begin(), missing.end());
  }
  if (ids.empty() && down.empty()) {
    return Status::InvalidArgument("no partitions to merge");
  }
  // Canonical node identity, exactly as the warehouse's memoized path
  // sorts before building the tree.
  std::sort(ids.begin(), ids.end());
  const std::vector<PartitionId> requested = ids;
  const uint64_t fingerprint = MergeOptionsFingerprint(options_.merge);

  // Degraded restart loop: the merge tree's shape (splits, node RNGs) is a
  // pure function of the id set, so losing a shard mid-merge cannot be
  // patched into the partially-built tree — the query restarts over the
  // surviving ids, which is exactly the tree a single node holding only
  // those ids would build. Each round removes at least one shard, so the
  // loop is bounded by the shard count.
  while (true) {
    std::vector<PartitionId> live_ids;
    std::vector<size_t> owners;
    live_ids.reserve(ids.size());
    owners.reserve(ids.size());
    for (const PartitionId id : ids) {
      const size_t owner = ShardOf(tenant, dataset, id);
      if (down.count(owner) != 0) continue;
      live_ids.push_back(id);
      owners.push_back(owner);
    }
    if (live_ids.empty()) {
      return Status::Unavailable(
          "no shard holding requested partitions is reachable (" +
          std::to_string(down.size()) + " of " +
          std::to_string(clients_.size()) + " shards down)");
    }

    size_t failed_shard = clients_.size();
    Result<PartitionSample> merged =
        MergeTree(tenant, dataset, key, live_ids, owners, fingerprint,
                  &failed_shard);
    if (merged.ok()) {
      result.sample = std::move(merged).value();
      result.partial = !down.empty();
      result.missing_shards.assign(down.begin(), down.end());
      if (result.partial && !all_partitions) {
        for (const PartitionId id : requested) {
          if (down.count(ShardOf(tenant, dataset, id)) != 0) {
            result.missing_ids.push_back(id);
          }
        }
      }
      if (result.partial) partial_queries_served_++;
      return result;
    }
    if (!query_options.allow_partial || !IsNodeDown(merged.status()) ||
        failed_shard >= clients_.size()) {
      return merged.status();
    }
    down.insert(failed_shard);
  }
}

std::vector<bool> ShardCoordinator::CheckHealth() {
  std::vector<bool> healthy;
  healthy.reserve(clients_.size());
  for (auto& client : clients_) {
    healthy.push_back(client->Ping().ok());
  }
  return healthy;
}

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats s;
  s.partial_queries_served = partial_queries_served_;
  for (const auto& client : clients_) {
    const ClientStatsSnapshot c = client->stats();
    s.retries_attempted += c.retries_attempted;
    s.reconnects += c.reconnects;
    s.breaker_open_total += c.breaker_open_total;
    s.transport_errors += c.transport_errors;
  }
  return s;
}

Result<PartitionSample> ShardCoordinator::MergeTree(
    const std::string& tenant, const std::string& dataset,
    const DatasetId& key, std::span<const PartitionId> ids,
    std::span<const size_t> owners, uint64_t fingerprint,
    size_t* failed_shard) {
  // Maximal push-down: a span wholly on one shard is one remote query —
  // the node's memoized merge builds the identical subtree (same sorted id
  // set, same floor(n/2) splits, same identity-derived node RNGs).
  const bool single_owner =
      std::all_of(owners.begin(), owners.end(),
                  [&](size_t o) { return o == owners[0]; });
  if (single_owner) {
    Result<PartitionSample> remote = clients_[owners[0]]->Query(
        tenant, dataset, std::vector<PartitionId>(ids.begin(), ids.end()));
    if (!remote.ok() && IsNodeDown(remote.status())) {
      *failed_shard = owners[0];
    }
    return remote;
  }
  const size_t half = ids.size() / 2;
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample left,
      MergeTree(tenant, dataset, key, ids.subspan(0, half),
                owners.subspan(0, half), fingerprint, failed_shard));
  SAMPWH_ASSIGN_OR_RETURN(
      const PartitionSample right,
      MergeTree(tenant, dataset, key, ids.subspan(half),
                owners.subspan(half), fingerprint, failed_shard));
  // The same RNG stream this node would consume inside any warehouse with
  // the same seed — the heart of the distributed-exactness contract.
  Pcg64 rng = MergeMemo::NodeRng(options_.seed, key, ids, fingerprint);
  return MergeSamples(left, right, options_.merge, rng);
}

}  // namespace sampwh
