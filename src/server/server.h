// WarehouseServer: the network daemon in front of a Warehouse. Speaks the
// CRC-framed binary protocol of server/wire.h over TCP (loopback or any
// interface), one thread per connection, exposing ingest / roll-in / query
// / admin verbs with per-tenant namespacing and quota enforcement
// (server/tenant.h).
//
// Robustness contract: a malformed frame — oversized length, CRC mismatch,
// bad magic, truncated stream, a peer that trickles bytes slower than the
// read timeout — yields a structured error response where framing still
// permits one, and then the connection is dropped. Unknown verbs and
// malformed bodies answer a structured error and keep the connection. The
// server never crashes on hostile input and counts every outcome
// (ServerStatsSnapshot) so tests can assert the taxonomy.
//
// Streaming ingest: kIngestOpen creates (or resumes, after a restart, from
// the persisted checkpoint chain) a StreamIngestor session per dataset and
// acks with the replay watermark; kIngestAppend applies sequence-addressed
// batches with exactly-once semantics over at-least-once delivery. A
// durable checkpoint is forced before the open is acked, so a client that
// re-drives its stream from the acked watermark after a server crash
// produces samples bit-identical to an uninterrupted run.

#ifndef SAMPWH_SERVER_SERVER_H_
#define SAMPWH_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/server/tenant.h"
#include "src/util/deadline.h"
#include "src/server/wire.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {

struct ServerOptions {
  /// Interface to bind. Tests and single-host sharding use loopback.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port — read it back via port(). All
  /// in-repo tests use 0 so parallel ctest never races on a fixed port.
  uint16_t port = 0;
  /// Per-frame payload bound; larger declared lengths are rejected before
  /// any allocation.
  uint32_t max_frame_bytes = kWireDefaultMaxFrameBytes;
  /// Per-recv timeout. A peer that stays silent (or trickles a frame
  /// slower than this, the slow-loris shape) is dropped. 0 disables.
  int read_timeout_millis = 30'000;
  /// Honor the kShutdown admin verb (the serve tool enables it so an
  /// orchestrator can stop the daemon over the wire).
  bool allow_remote_shutdown = true;
  /// Admission control: maximum simultaneously served connections. A
  /// connection beyond the cap is answered a structured kResourceExhausted
  /// frame and closed BEFORE a thread is spawned — overload sheds load
  /// with an explicit, machine-readable refusal, never a silent FIN or a
  /// hang. 0 disables the cap.
  uint32_t max_connections = 0;

  /// The embedded warehouse. merge_memo_bytes MUST stay nonzero for the
  /// distributed-exactness contract: memoized merges derive every node's
  /// RNG from node identity, which is what makes a pushed-down shard
  /// subtree bit-identical to the same node computed anywhere else.
  WarehouseOptions warehouse;

  /// File-backed store directory; empty runs on an in-memory store. With a
  /// directory, the manifest is kept at "<directory>/MANIFEST" and startup
  /// restores the previous state through RestoreWithRecovery.
  std::string store_directory;

  /// Streaming-ingest sessions: elements per closed partition (count
  /// partitioner) and the checkpoint cadence of each session.
  uint64_t ingest_partition_elements = 64 * 1024;
  CheckpointPolicy ingest_checkpoints{.every_n_elements = 8 * 1024};

  /// Tenants pre-created at startup (name -> quota); the admin verbs can
  /// add more at runtime.
  std::map<std::string, TenantQuota> bootstrap_tenants;
};

/// Monotonic counters over the server's lifetime.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  /// Connections torn down because of a framing violation, timeout or
  /// mid-frame disconnect (orderly EOF between frames does not count).
  uint64_t connections_dropped = 0;
  uint64_t requests_served = 0;
  /// Structured error responses sent (bad body, unknown verb, quota, ...).
  uint64_t error_responses = 0;
  /// Framing-level violations observed (oversized, bad CRC, bad magic,
  /// mid-frame EOF, timeouts).
  uint64_t protocol_errors = 0;
  /// Connections refused with a structured error before service: over the
  /// max_connections cap (kResourceExhausted) or during drain
  /// (kUnavailable).
  uint64_t connections_shed = 0;
  /// Requests that failed because the client's propagated deadline passed
  /// (checked before dispatch and inside long merges).
  uint64_t deadlines_exceeded = 0;
  /// kReplicaRollIn requests applied (including idempotent no-ops) — the
  /// write amplification a replication factor R > 1 produces.
  uint64_t replica_writes = 0;
  /// Requests carrying kRequestFlagFailoverRead: queries a coordinator
  /// re-drove onto this node after another owner failed.
  uint64_t failover_reads = 0;
  /// kPartitionDigests scans served (one per dataset per anti-entropy
  /// round).
  uint64_t scrub_rounds = 0;
  /// Partitions replaced or re-created by a heal-flagged kReplicaRollIn.
  uint64_t partitions_healed = 0;
  /// Replica writes that found an existing copy whose content digest
  /// disagreed with the incoming bytes (divergence repaired in place).
  uint64_t digest_mismatches = 0;
};

class WarehouseServer {
 public:
  /// Opens the store (restoring a prior manifest when present), binds and
  /// starts serving. The returned server is running; Stop() (or
  /// destruction) shuts it down and joins every thread.
  static Result<std::unique_ptr<WarehouseServer>> Start(ServerOptions options);

  ~WarehouseServer();

  WarehouseServer(const WarehouseServer&) = delete;
  WarehouseServer& operator=(const WarehouseServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Graceful shutdown: stops accepting, unblocks and joins every
  /// connection, checkpoints every ingest session (a restart resumes
  /// them). Idempotent.
  void Stop();

  /// Asynchronous shutdown signal: stops accepting new connections and
  /// marks the server stopping. Safe from a connection thread (the
  /// kShutdown verb uses it); the owner still calls Stop() to join.
  void RequestStop();

  /// True once RequestStop()/Stop() was called (or a kShutdown verb was
  /// honored). The serve tool polls this to know when to tear down.
  bool stop_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// True once Stop() completed.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Enters drain mode: every NEW connection is answered a structured
  /// kUnavailable("server draining") frame and closed, while in-flight
  /// connections keep being served — a streaming ingest in progress
  /// finishes exactly-once. Idempotent; the owner still calls Stop().
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Blocks until every in-flight connection has finished or
  /// `deadline_millis` passed (0 = no bound). True when the server drained
  /// clean. Callers typically BeginDrain(), WaitDrained(bound), Stop().
  bool WaitDrained(uint64_t deadline_millis);

  ServerStatsSnapshot stats() const;

  /// The embedded warehouse; test-only (bit-identity assertions).
  Warehouse* warehouse_for_testing() { return warehouse_.get(); }
  /// The tenant catalog; test-only.
  TenantCatalog* tenants_for_testing() { return &tenants_; }

 private:
  struct IngestSession {
    std::mutex mu;
    std::unique_ptr<StreamIngestor> ingestor;
    /// rolled_in() prefix already charged against the tenant's quota.
    size_t charged = 0;
  };

  WarehouseServer(ServerOptions options, std::unique_ptr<Warehouse> warehouse);

  Status Listen();
  void AcceptLoop();
  /// Joins and closes every finished connection slot.
  void ReapConnections();
  /// Refuses `fd` with a structured `reason` frame: response + FIN now, a
  /// deferred close after a short grace so the peer reliably reads the
  /// refusal before any RST could discard it. The fd joins `shed`.
  void ShedConnection(int fd, const Status& reason,
                      std::vector<std::pair<int, SteadyTime>>* shed);
  void ServeConnection(int fd);
  /// Dispatches one request payload; returns the response payload. Sets
  /// *shutdown when a kShutdown verb was honored.
  std::string HandleRequest(std::string_view payload, bool* shutdown);

  // Verb handlers append their body to `resp` on success.
  Status HandlePing(BinaryReader& req, BinaryWriter& resp);
  Status HandleServerStats(BinaryReader& req, BinaryWriter& resp);
  Status HandleCreateTenant(BinaryReader& req);
  Status HandleSetTenantQuota(BinaryReader& req);
  Status HandleTenantStats(BinaryReader& req, BinaryWriter& resp);
  Status HandleListTenants(BinaryWriter& resp);
  Status HandleCreateDataset(BinaryReader& req);
  Status HandleDropDataset(BinaryReader& req);
  Status HandleListDatasets(BinaryReader& req, BinaryWriter& resp);
  Status HandleListPartitions(BinaryReader& req, BinaryWriter& resp);
  Status HandleRollIn(BinaryReader& req, BinaryWriter& resp, bool explicit_id);
  Status HandleReplicaRollIn(BinaryReader& req, BinaryWriter& resp);
  Status HandleRollOut(BinaryReader& req);
  Status HandleQuery(BinaryReader& req, BinaryWriter& resp);
  Status HandlePartitionDigests(BinaryReader& req, BinaryWriter& resp);
  Status HandleIngestOpen(BinaryReader& req, BinaryWriter& resp);
  Status HandleIngestAppend(BinaryReader& req, BinaryWriter& resp);
  Status HandleIngestFlush(BinaryReader& req, BinaryWriter& resp);

  /// Reads "tenant, dataset" from a request body and resolves the internal
  /// key, requiring the tenant to exist.
  Status ReadScope(BinaryReader& req, std::string* tenant, DatasetId* key);
  /// Charges quota for roll-ins the session performed since last
  /// reconciliation (streaming closes happen inside StreamIngestor, outside
  /// the verb handler). Looks up each new partition's stored footprint.
  void ReconcileSessionCharges(const std::string& tenant, const DatasetId& key,
                               IngestSession* session);
  /// The session's pre-append quota gate: rejects further streamed elements
  /// once the tenant's usage has reached a quota.
  Status CheckStreamQuota(const std::string& tenant);

  ServerOptions options_;
  std::unique_ptr<Warehouse> warehouse_;
  TenantCatalog tenants_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::once_flag stop_once_;

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conns_mu_;
  std::list<Connection> conns_;

  std::mutex sessions_mu_;
  std::map<DatasetId, std::shared_ptr<IngestSession>> sessions_;

  /// Connections currently being served (spawned, not yet finished); the
  /// admission cap and WaitDrained() read it.
  std::atomic<uint32_t> active_connections_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> error_responses_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};
  std::atomic<uint64_t> replica_writes_{0};
  std::atomic<uint64_t> failover_reads_{0};
  std::atomic<uint64_t> scrub_rounds_{0};
  std::atomic<uint64_t> partitions_healed_{0};
  std::atomic<uint64_t> digest_mismatches_{0};
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_SERVER_H_
