#include "src/server/tenant.h"

#include <utility>

namespace sampwh {

namespace {

bool TenantChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

Status ValidateTenantId(const std::string& tenant) {
  if (tenant.empty()) return Status::InvalidArgument("empty tenant id");
  if (tenant.size() > 64) {
    return Status::InvalidArgument("tenant id over 64 bytes");
  }
  for (const char c : tenant) {
    if (!TenantChar(c)) {
      return Status::InvalidArgument("tenant id '" + tenant +
                                     "' has characters outside [A-Za-z0-9_-]");
    }
  }
  return Status::OK();
}

Result<DatasetId> MakeTenantDatasetKey(const std::string& tenant,
                                       const std::string& dataset) {
  SAMPWH_RETURN_IF_ERROR(ValidateTenantId(tenant));
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(dataset));
  DatasetId key = tenant + "." + dataset;
  SAMPWH_RETURN_IF_ERROR(ValidateDatasetId(key));
  return key;
}

Status SplitTenantDatasetKey(const DatasetId& key, std::string* tenant,
                             std::string* dataset) {
  const size_t dot = key.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == key.size()) {
    return Status::InvalidArgument("not a tenant-namespaced key: " + key);
  }
  *tenant = key.substr(0, dot);
  *dataset = key.substr(dot + 1);
  return ValidateTenantId(*tenant);
}

Status TenantCatalog::CreateTenant(const std::string& tenant,
                                   const TenantQuota& quota) {
  SAMPWH_RETURN_IF_ERROR(ValidateTenantId(tenant));
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.contains(tenant)) {
    return Status::AlreadyExists("tenant exists: " + tenant);
  }
  tenants_[tenant].quota = quota;
  return Status::OK();
}

Status TenantCatalog::SetQuota(const std::string& tenant,
                               const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no tenant: " + tenant);
  it->second.quota = quota;
  return Status::OK();
}

bool TenantCatalog::HasTenant(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.contains(tenant);
}

Result<TenantQuota> TenantCatalog::GetQuota(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no tenant: " + tenant);
  return it->second.quota;
}

Result<TenantUsage> TenantCatalog::GetUsage(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no tenant: " + tenant);
  return it->second.usage;
}

std::vector<std::string> TenantCatalog::ListTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, _] : tenants_) names.push_back(name);
  return names;
}

Status TenantCatalog::ChargeDataset(const std::string& tenant, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no tenant: " + tenant);
  TenantState& state = it->second;
  if (!force && state.quota.max_datasets != 0 &&
      state.usage.datasets + 1 > state.quota.max_datasets) {
    return Status::ResourceExhausted(
        "tenant " + tenant + " dataset quota (" +
        std::to_string(state.quota.max_datasets) + ") exhausted");
  }
  ++state.usage.datasets;
  return Status::OK();
}

void TenantCatalog::CreditDataset(const std::string& tenant,
                                  const DatasetId& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  if (state.usage.datasets > 0) --state.usage.datasets;
  // Credit every partition charge recorded under the dropped dataset.
  for (auto p = state.partition_bytes.lower_bound({key, 0});
       p != state.partition_bytes.end() && p->first.first == key;
       p = state.partition_bytes.erase(p)) {
    state.usage.bytes -= std::min(state.usage.bytes, p->second);
    if (state.usage.partitions > 0) --state.usage.partitions;
  }
}

Status TenantCatalog::ChargePartition(const std::string& tenant,
                                      const DatasetId& key, PartitionId id,
                                      uint64_t bytes, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no tenant: " + tenant);
  TenantState& state = it->second;
  // Re-charging a live (key, id) — a replica heal replacing divergent
  // bytes — swaps the recorded footprint instead of double-counting the
  // slot, so usage always equals the sum of recorded charges.
  const auto existing = state.partition_bytes.find({key, id});
  const bool replacing = existing != state.partition_bytes.end();
  const uint64_t replaced_bytes = replacing ? existing->second : 0;
  if (!force && !replacing && state.quota.max_partitions != 0 &&
      state.usage.partitions + 1 > state.quota.max_partitions) {
    return Status::ResourceExhausted(
        "tenant " + tenant + " partition quota (" +
        std::to_string(state.quota.max_partitions) + ") exhausted");
  }
  const uint64_t bytes_after =
      state.usage.bytes - std::min(state.usage.bytes, replaced_bytes) + bytes;
  if (!force && state.quota.max_bytes != 0 &&
      bytes_after > state.quota.max_bytes) {
    return Status::ResourceExhausted(
        "tenant " + tenant + " byte quota (" +
        std::to_string(state.quota.max_bytes) + ") exhausted: " +
        std::to_string(state.usage.bytes) + " used + " +
        std::to_string(bytes) + " requested");
  }
  if (!replacing) ++state.usage.partitions;
  state.usage.bytes = bytes_after;
  state.partition_bytes[{key, id}] = bytes;
  return Status::OK();
}

void TenantCatalog::CreditPartition(const std::string& tenant,
                                    const DatasetId& key, PartitionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  const auto charge = state.partition_bytes.find({key, id});
  if (charge == state.partition_bytes.end()) return;
  state.usage.bytes -= std::min(state.usage.bytes, charge->second);
  if (state.usage.partitions > 0) --state.usage.partitions;
  state.partition_bytes.erase(charge);
}

void TenantCatalog::RenamePartitionCharge(const std::string& tenant,
                                          const DatasetId& key,
                                          PartitionId provisional,
                                          PartitionId real) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  const auto charge = state.partition_bytes.find({key, provisional});
  if (charge == state.partition_bytes.end()) return;
  const uint64_t bytes = charge->second;
  state.partition_bytes.erase(charge);
  state.partition_bytes[{key, real}] = bytes;
}

}  // namespace sampwh
