// ShardCoordinator: spreads a tenant's datasets across N warehouse server
// nodes and answers merged-sample queries over the union — bit-identical
// to what a single warehouse node holding every partition would return.
//
// How exactness survives distribution: the warehouse's memoized merge
// builds a balanced binary tree over the canonically sorted partition-id
// set, splitting every node at floor(n/2), and derives each node's RNG
// purely from the node's identity (MergeMemo::NodeRng — warehouse seed,
// dataset key, id set, merge-options fingerprint). The split rule depends
// only on leaf count, so the subtree over any contiguous id span IS the
// tree a standalone query over exactly those ids would build. The
// coordinator therefore walks the same tree shape: a subtree whose leaves
// all live on one shard is pushed down as an explicit-id query (the node
// computes it, bit-identically, through its own memoized path); a subtree
// spanning shards recurses and joins the halves locally with the identical
// NodeRng stream and merge options. Requirements for bit-identity, checked
// nowhere but owned by deployment: every node runs the same warehouse
// seed, the same MergeOptions (and alias-cache wiring), and nonzero
// merge_memo_bytes.
//
// Partition placement: the coordinator allocates globally unique partition
// ids per dataset (keeping its allocator ahead of whatever the nodes
// restored) and routes each id through ShardRouter(dataset-key, N) — the
// same stable hash-sharding the parallel ingest path uses — placing the
// sample via the kRollInAt verb.

#ifndef SAMPWH_SERVER_COORDINATOR_H_
#define SAMPWH_SERVER_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/merge.h"
#include "src/server/client.h"

namespace sampwh {

struct ShardNodeAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  /// MUST equal every node's WarehouseOptions::seed.
  uint64_t seed = 0x5157313136ULL;
  /// MUST equal every node's WarehouseOptions::merge.
  MergeOptions merge;
  /// MUST equal every node's WarehouseOptions::cache_alias_tables (the
  /// alias cache changes both the options fingerprint and how merge nodes
  /// consume randomness).
  bool cache_alias_tables = false;
  ClientOptions client;
};

class ShardCoordinator {
 public:
  /// Connects one client to every node. At least one node required.
  static Result<std::unique_ptr<ShardCoordinator>> Connect(
      const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options);

  size_t num_shards() const { return clients_.size(); }

  /// The shard owning partition `id` of (tenant, dataset).
  size_t ShardOf(const std::string& tenant, const std::string& dataset,
                 PartitionId id) const;

  /// Fan-out admin: applied on every node (a tenant/dataset exists
  /// everywhere so any shard can receive its partitions).
  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);
  Status CreateDataset(const std::string& tenant, const std::string& dataset);
  Status DropDataset(const std::string& tenant, const std::string& dataset);

  /// Rolls `sample` in under a freshly allocated global partition id on
  /// the id's home shard; returns the id.
  Result<PartitionId> RollIn(const std::string& tenant,
                             const std::string& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);

  /// Rolls out `id` from its home shard.
  Status RollOut(const std::string& tenant, const std::string& dataset,
                 PartitionId id);

  /// Every partition id of (tenant, dataset) across all shards, sorted.
  Result<std::vector<PartitionId>> ListAllPartitions(
      const std::string& tenant, const std::string& dataset);

  /// Merged sample over `ids` (empty = all partitions on all shards),
  /// bit-identical to a single node holding every partition.
  Result<PartitionSample> Query(const std::string& tenant,
                                const std::string& dataset,
                                std::vector<PartitionId> ids = {});

  /// Per-node client, for tests and the load generator.
  WarehouseClient* client(size_t shard) { return clients_[shard].get(); }

 private:
  explicit ShardCoordinator(CoordinatorOptions options);

  /// Computes the merge-tree node over the sorted id span: pushed down
  /// whole when single-owner, otherwise joined locally from its halves on
  /// the node-identity RNG stream.
  Result<PartitionSample> MergeTree(const std::string& tenant,
                                    const std::string& dataset,
                                    const DatasetId& key,
                                    std::span<const PartitionId> ids,
                                    std::span<const size_t> owners,
                                    uint64_t fingerprint);

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<WarehouseClient>> clients_;
  /// Coordinator-side global id allocator, per internal dataset key.
  std::map<DatasetId, PartitionId> next_id_;
  AliasCache alias_cache_;
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_COORDINATOR_H_
