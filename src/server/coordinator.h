// ShardCoordinator: spreads a tenant's datasets across N warehouse server
// nodes and answers merged-sample queries over the union — bit-identical
// to what a single warehouse node holding every partition would return.
//
// How exactness survives distribution: the warehouse's memoized merge
// builds a balanced binary tree over the canonically sorted partition-id
// set, splitting every node at floor(n/2), and derives each node's RNG
// purely from the node's identity (MergeMemo::NodeRng — warehouse seed,
// dataset key, id set, merge-options fingerprint). The split rule depends
// only on leaf count, so the subtree over any contiguous id span IS the
// tree a standalone query over exactly those ids would build. The
// coordinator therefore walks the same tree shape: a subtree whose leaves
// all live on one shard is pushed down as an explicit-id query (the node
// computes it, bit-identically, through its own memoized path); a subtree
// spanning shards recurses and joins the halves locally with the identical
// NodeRng stream and merge options. Requirements for bit-identity, checked
// nowhere but owned by deployment: every node runs the same warehouse
// seed, the same MergeOptions (and alias-cache wiring), and nonzero
// merge_memo_bytes.
//
// Partition placement: the coordinator allocates globally unique partition
// ids per dataset (keeping its allocator ahead of whatever the nodes
// restored) and routes each id through ShardRouter(dataset-key, N) — the
// same stable hash-sharding the parallel ingest path uses — placing the
// sample via the kRollInAt verb.
//
// Replication (replication_factor R > 1): each id's owner set is the
// contiguous run {primary, primary+1, ..., primary+R-1} (mod N) — a pure
// function of the primary, so every id in a pushed-down subtree (grouped
// by primary) shares one owner set and the whole subtree fails over
// wholesale. Writes land on the primary via kRollInAt (the single
// quota-admission point) and on each replica via kReplicaRollIn (charged
// unconditionally — charge-once semantics: admission happened at the
// primary; forced replica charges keep every node's recorded usage equal
// to its stored footprint). A write needs `write_quorum` owner acks to
// succeed. Reads fail over inside the merge walk: a subtree whose serving
// owner is down or breaker-open is re-driven on the next owner in order
// (flagged kRequestFlagFailoverRead) and the answer stays bit-identical —
// the merge tree's shape and node RNGs depend on the id set, never on
// which node serves a span. With at most R-1 nodes down every query is
// exact; only the loss of a full owner set degrades to partial (under
// allow_partial) or fails. ScrubDataset is the anti-entropy pass: it
// collects per-owner content digests (kPartitionDigests — corrupt copies
// are quarantined server-side and read as missing), elects the majority
// digest per partition (ties to the lowest-index readable owner),
// re-replicates missing or divergent copies from a healthy owner via
// heal-flagged kReplicaRollIn, and so also heals quarantined partitions
// from their surviving replicas instead of dropping them.

#ifndef SAMPWH_SERVER_COORDINATOR_H_
#define SAMPWH_SERVER_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/core/merge.h"
#include "src/server/client.h"

namespace sampwh {

struct ShardNodeAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  /// MUST equal every node's WarehouseOptions::seed.
  uint64_t seed = 0x5157313136ULL;
  /// MUST equal every node's WarehouseOptions::merge.
  MergeOptions merge;
  /// MUST equal every node's WarehouseOptions::cache_alias_tables (the
  /// alias cache changes both the options fingerprint and how merge nodes
  /// consume randomness).
  bool cache_alias_tables = false;
  ClientOptions client;
  /// Keep a coordinator whose nodes are (partly) unreachable at Connect
  /// time: down nodes get a lazily-connecting client whose circuit breaker
  /// fails their calls fast until the node comes back. Without it, Connect
  /// fails unless every node answers a ping.
  bool tolerate_unreachable = false;
  /// Copies of every partition. 1 disables replication (the pre-existing
  /// single-copy behavior); the effective factor is min(R, node count).
  uint32_t replication_factor = 1;
  /// Owner acks a RollIn needs before it reports success; 0 requires every
  /// owner. The primary's quota-gated ack is always required (it is the
  /// admission point) and counts toward the quorum; replicas that miss the
  /// quorum window are repaired by the next ScrubDataset round.
  uint32_t write_quorum = 0;
};

/// Per-query knobs for the degraded-operation path.
struct QueryOptions {
  /// Permit answering from the surviving shards when some are unreachable.
  /// The result is then explicitly flagged partial, with the missing
  /// shards listed — and it is bit-identical to a single-node query over
  /// exactly the surviving id set (the merge tree's shape and node RNGs
  /// are pure functions of the id set).
  bool allow_partial = false;
  /// Deadline propagated to every remote call this query makes; 0 = none.
  uint64_t deadline_millis = 0;
};

/// A possibly-degraded query answer. `partial` is false on the happy path
/// (then missing_* are empty and `sample` equals the strict Query answer).
struct ShardQueryResult {
  PartitionSample sample;
  bool partial = false;
  /// Shards that did not contribute (unreachable through retries).
  std::vector<size_t> missing_shards;
  /// Requested partition ids excluded because their home shard is in
  /// missing_shards. Empty for an all-partitions query when the down
  /// shard's inventory is unknowable.
  std::vector<PartitionId> missing_ids;
};

/// Coordinator-level counters; client-level counters are aggregated over
/// the per-node clients at snapshot time.
struct CoordinatorStats {
  uint64_t partial_queries_served = 0;
  uint64_t retries_attempted = 0;
  uint64_t reconnects = 0;
  uint64_t breaker_open_total = 0;
  uint64_t transport_errors = 0;
  /// Subtree queries re-driven onto a replica after an owner failed.
  uint64_t failover_reads = 0;
  /// ScrubDataset passes completed.
  uint64_t scrub_rounds = 0;
  /// Replica copies re-created or repaired by ScrubDataset.
  uint64_t partitions_healed = 0;
};

/// Outcome of one ScrubDataset anti-entropy pass.
struct ScrubReport {
  /// Distinct partition ids examined (union over every reachable owner).
  uint64_t partitions_scanned = 0;
  /// Owner slots that should hold a copy but had none readable (includes
  /// copies the digest scan quarantined as corrupt).
  uint64_t replicas_missing = 0;
  /// Readable copies whose content digest disagreed with the elected
  /// authoritative digest.
  uint64_t digest_mismatches = 0;
  /// Copies successfully re-replicated from a healthy owner.
  uint64_t healed = 0;
  /// Broken copies that could not be repaired (no healthy readable source
  /// among reachable owners, or the heal write itself failed).
  uint64_t unhealable = 0;
};

class ShardCoordinator {
 public:
  /// Connects one client to every node. At least one node required.
  static Result<std::unique_ptr<ShardCoordinator>> Connect(
      const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options);

  size_t num_shards() const { return clients_.size(); }

  /// The shard owning partition `id` of (tenant, dataset).
  size_t ShardOf(const std::string& tenant, const std::string& dataset,
                 PartitionId id) const;

  /// Effective replication factor: min(options.replication_factor, N).
  size_t replication_factor() const;

  /// The nodes holding copies of every id whose primary is `primary`: the
  /// contiguous run {primary, ..., primary + R - 1} (mod N), primary
  /// first. A pure function of the primary, so a pushed-down subtree
  /// (grouped by primary) fails over wholesale.
  std::vector<size_t> OwnersOf(size_t primary) const;

  /// Fan-out admin: applied on every node (a tenant/dataset exists
  /// everywhere so any shard can receive its partitions).
  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);
  Status CreateDataset(const std::string& tenant, const std::string& dataset);
  Status DropDataset(const std::string& tenant, const std::string& dataset);

  /// Rolls `sample` in under a freshly allocated global partition id: a
  /// quota-gated write on the id's primary, then a forced-charge replica
  /// copy on each further owner, succeeding once write_quorum owners
  /// acked. Returns the id.
  Result<PartitionId> RollIn(const std::string& tenant,
                             const std::string& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);

  /// Rolls out `id` from every owner.
  Status RollOut(const std::string& tenant, const std::string& dataset,
                 PartitionId id);

  /// Every partition id of (tenant, dataset) across all shards, sorted.
  Result<std::vector<PartitionId>> ListAllPartitions(
      const std::string& tenant, const std::string& dataset);

  /// Merged sample over `ids` (empty = all partitions on all shards),
  /// bit-identical to a single node holding every partition. Strict: any
  /// unreachable shard fails the query.
  Result<PartitionSample> Query(const std::string& tenant,
                                const std::string& dataset,
                                std::vector<PartitionId> ids = {});

  /// Query with degraded-operation knobs. With allow_partial, shards that
  /// stay unreachable through the client's retries are dropped and the
  /// merge restarts over the surviving id set (the tree's shape depends on
  /// the id set, so a mid-merge loss cannot be patched in place); the
  /// answer is flagged partial. Fails with kUnavailable when no shard
  /// survives.
  Result<ShardQueryResult> QueryWithOptions(const std::string& tenant,
                                            const std::string& dataset,
                                            std::vector<PartitionId> ids,
                                            const QueryOptions& query_options);

  /// One anti-entropy pass over (tenant, dataset): collects per-owner
  /// content digests, elects the authoritative digest per partition
  /// (majority; ties to the lowest-index readable owner), and
  /// re-replicates missing or divergent copies from a healthy owner via
  /// heal-flagged replica writes. Unreachable nodes are skipped (their
  /// copies are neither counted missing nor healable this round). Also the
  /// repair path for quarantined partitions: the corrupt copy reads as
  /// missing and is rebuilt from a surviving replica.
  Result<ScrubReport> ScrubDataset(const std::string& tenant,
                                   const std::string& dataset);

  /// Pings every node; healthy[i] is node i's reachability. Cheap for
  /// nodes whose breaker is open (no connect timeout burned).
  std::vector<bool> CheckHealth();

  CoordinatorStats stats() const;

  /// Per-node client, for tests and the load generator.
  WarehouseClient* client(size_t shard) { return clients_[shard].get(); }

 private:
  explicit ShardCoordinator(CoordinatorOptions options);

  /// Computes the merge-tree node over the sorted id span: pushed down
  /// whole when single-primary, otherwise joined locally from its halves
  /// on the node-identity RNG stream. A pushed-down span is tried on each
  /// of its owners in order (skipping nodes already in `*down` or with an
  /// open breaker; re-drives are flagged failover reads) — the answer is
  /// identical from any owner, so replication-factor R survives R-1 node
  /// losses without degrading. Owners that fail as unreachable are added
  /// to `*down`; when a span exhausts every owner, `*failed_primary` names
  /// its primary so the degraded restart can drop those ids.
  Result<PartitionSample> MergeTree(const std::string& tenant,
                                    const std::string& dataset,
                                    const DatasetId& key,
                                    std::span<const PartitionId> ids,
                                    std::span<const size_t> primaries,
                                    uint64_t fingerprint,
                                    std::set<size_t>* down,
                                    size_t* failed_primary);

  /// One pushed-down span query with owner-order failover; the
  /// single-primary arm of MergeTree.
  Result<PartitionSample> QuerySpanWithFailover(
      const std::string& tenant, const std::string& dataset, size_t primary,
      std::span<const PartitionId> ids, std::set<size_t>* down);

  /// ListAllPartitions that can skip unreachable shards, recording them in
  /// `*missing_shards` (strict when null).
  Result<std::vector<PartitionId>> ListPartitionsDegraded(
      const std::string& tenant, const std::string& dataset,
      std::vector<size_t>* missing_shards);

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<WarehouseClient>> clients_;
  /// Coordinator-side global id allocator, per internal dataset key.
  std::map<DatasetId, PartitionId> next_id_;
  AliasCache alias_cache_;
  uint64_t partial_queries_served_ = 0;
  uint64_t failover_reads_ = 0;
  uint64_t scrub_rounds_ = 0;
  uint64_t partitions_healed_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_COORDINATOR_H_
