// ShardCoordinator: spreads a tenant's datasets across N warehouse server
// nodes and answers merged-sample queries over the union — bit-identical
// to what a single warehouse node holding every partition would return.
//
// How exactness survives distribution: the warehouse's memoized merge
// builds a balanced binary tree over the canonically sorted partition-id
// set, splitting every node at floor(n/2), and derives each node's RNG
// purely from the node's identity (MergeMemo::NodeRng — warehouse seed,
// dataset key, id set, merge-options fingerprint). The split rule depends
// only on leaf count, so the subtree over any contiguous id span IS the
// tree a standalone query over exactly those ids would build. The
// coordinator therefore walks the same tree shape: a subtree whose leaves
// all live on one shard is pushed down as an explicit-id query (the node
// computes it, bit-identically, through its own memoized path); a subtree
// spanning shards recurses and joins the halves locally with the identical
// NodeRng stream and merge options. Requirements for bit-identity, checked
// nowhere but owned by deployment: every node runs the same warehouse
// seed, the same MergeOptions (and alias-cache wiring), and nonzero
// merge_memo_bytes.
//
// Partition placement: the coordinator allocates globally unique partition
// ids per dataset (keeping its allocator ahead of whatever the nodes
// restored) and routes each id through ShardRouter(dataset-key, N) — the
// same stable hash-sharding the parallel ingest path uses — placing the
// sample via the kRollInAt verb.

#ifndef SAMPWH_SERVER_COORDINATOR_H_
#define SAMPWH_SERVER_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/merge.h"
#include "src/server/client.h"

namespace sampwh {

struct ShardNodeAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  /// MUST equal every node's WarehouseOptions::seed.
  uint64_t seed = 0x5157313136ULL;
  /// MUST equal every node's WarehouseOptions::merge.
  MergeOptions merge;
  /// MUST equal every node's WarehouseOptions::cache_alias_tables (the
  /// alias cache changes both the options fingerprint and how merge nodes
  /// consume randomness).
  bool cache_alias_tables = false;
  ClientOptions client;
  /// Keep a coordinator whose nodes are (partly) unreachable at Connect
  /// time: down nodes get a lazily-connecting client whose circuit breaker
  /// fails their calls fast until the node comes back. Without it, Connect
  /// fails unless every node answers a ping.
  bool tolerate_unreachable = false;
};

/// Per-query knobs for the degraded-operation path.
struct QueryOptions {
  /// Permit answering from the surviving shards when some are unreachable.
  /// The result is then explicitly flagged partial, with the missing
  /// shards listed — and it is bit-identical to a single-node query over
  /// exactly the surviving id set (the merge tree's shape and node RNGs
  /// are pure functions of the id set).
  bool allow_partial = false;
  /// Deadline propagated to every remote call this query makes; 0 = none.
  uint64_t deadline_millis = 0;
};

/// A possibly-degraded query answer. `partial` is false on the happy path
/// (then missing_* are empty and `sample` equals the strict Query answer).
struct ShardQueryResult {
  PartitionSample sample;
  bool partial = false;
  /// Shards that did not contribute (unreachable through retries).
  std::vector<size_t> missing_shards;
  /// Requested partition ids excluded because their home shard is in
  /// missing_shards. Empty for an all-partitions query when the down
  /// shard's inventory is unknowable.
  std::vector<PartitionId> missing_ids;
};

/// Coordinator-level counters; client-level counters are aggregated over
/// the per-node clients at snapshot time.
struct CoordinatorStats {
  uint64_t partial_queries_served = 0;
  uint64_t retries_attempted = 0;
  uint64_t reconnects = 0;
  uint64_t breaker_open_total = 0;
  uint64_t transport_errors = 0;
};

class ShardCoordinator {
 public:
  /// Connects one client to every node. At least one node required.
  static Result<std::unique_ptr<ShardCoordinator>> Connect(
      const std::vector<ShardNodeAddress>& nodes, CoordinatorOptions options);

  size_t num_shards() const { return clients_.size(); }

  /// The shard owning partition `id` of (tenant, dataset).
  size_t ShardOf(const std::string& tenant, const std::string& dataset,
                 PartitionId id) const;

  /// Fan-out admin: applied on every node (a tenant/dataset exists
  /// everywhere so any shard can receive its partitions).
  Status CreateTenant(const std::string& tenant, const TenantQuota& quota);
  Status CreateDataset(const std::string& tenant, const std::string& dataset);
  Status DropDataset(const std::string& tenant, const std::string& dataset);

  /// Rolls `sample` in under a freshly allocated global partition id on
  /// the id's home shard; returns the id.
  Result<PartitionId> RollIn(const std::string& tenant,
                             const std::string& dataset,
                             const PartitionSample& sample,
                             uint64_t min_timestamp = 0,
                             uint64_t max_timestamp = 0);

  /// Rolls out `id` from its home shard.
  Status RollOut(const std::string& tenant, const std::string& dataset,
                 PartitionId id);

  /// Every partition id of (tenant, dataset) across all shards, sorted.
  Result<std::vector<PartitionId>> ListAllPartitions(
      const std::string& tenant, const std::string& dataset);

  /// Merged sample over `ids` (empty = all partitions on all shards),
  /// bit-identical to a single node holding every partition. Strict: any
  /// unreachable shard fails the query.
  Result<PartitionSample> Query(const std::string& tenant,
                                const std::string& dataset,
                                std::vector<PartitionId> ids = {});

  /// Query with degraded-operation knobs. With allow_partial, shards that
  /// stay unreachable through the client's retries are dropped and the
  /// merge restarts over the surviving id set (the tree's shape depends on
  /// the id set, so a mid-merge loss cannot be patched in place); the
  /// answer is flagged partial. Fails with kUnavailable when no shard
  /// survives.
  Result<ShardQueryResult> QueryWithOptions(const std::string& tenant,
                                            const std::string& dataset,
                                            std::vector<PartitionId> ids,
                                            const QueryOptions& query_options);

  /// Pings every node; healthy[i] is node i's reachability. Cheap for
  /// nodes whose breaker is open (no connect timeout burned).
  std::vector<bool> CheckHealth();

  CoordinatorStats stats() const;

  /// Per-node client, for tests and the load generator.
  WarehouseClient* client(size_t shard) { return clients_[shard].get(); }

 private:
  explicit ShardCoordinator(CoordinatorOptions options);

  /// Computes the merge-tree node over the sorted id span: pushed down
  /// whole when single-owner, otherwise joined locally from its halves on
  /// the node-identity RNG stream. On a remote transport failure,
  /// `*failed_shard` names the shard that failed (for the degraded path's
  /// restart logic).
  Result<PartitionSample> MergeTree(const std::string& tenant,
                                    const std::string& dataset,
                                    const DatasetId& key,
                                    std::span<const PartitionId> ids,
                                    std::span<const size_t> owners,
                                    uint64_t fingerprint,
                                    size_t* failed_shard);

  /// ListAllPartitions that can skip unreachable shards, recording them in
  /// `*missing_shards` (strict when null).
  Result<std::vector<PartitionId>> ListPartitionsDegraded(
      const std::string& tenant, const std::string& dataset,
      std::vector<size_t>* missing_shards);

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<WarehouseClient>> clients_;
  /// Coordinator-side global id allocator, per internal dataset key.
  std::map<DatasetId, PartitionId> next_id_;
  AliasCache alias_cache_;
  uint64_t partial_queries_served_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_SERVER_COORDINATOR_H_
