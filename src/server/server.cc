#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/deadline.h"

#include "src/warehouse/partitioner.h"
#include "src/warehouse/sample_store.h"

namespace sampwh {

namespace {

/// Provisional partition-id space for charge-before-allocate roll-ins.
/// Real ids are allocated densely from 0; the top quarter of the id space
/// can never collide with one.
constexpr PartitionId kProvisionalIdBase = 1ull << 62;
std::atomic<uint64_t> g_provisional_nonce{0};

void PutQuota(BinaryWriter* w, const TenantQuota& q) {
  w->PutVarint64(q.max_bytes);
  w->PutVarint64(q.max_partitions);
  w->PutVarint64(q.max_datasets);
}

Status GetQuotaBody(BinaryReader* r, TenantQuota* q) {
  SAMPWH_RETURN_IF_ERROR(r->GetVarint64(&q->max_bytes));
  SAMPWH_RETURN_IF_ERROR(r->GetVarint64(&q->max_partitions));
  return r->GetVarint64(&q->max_datasets);
}

}  // namespace

WarehouseServer::WarehouseServer(ServerOptions options,
                                 std::unique_ptr<Warehouse> warehouse)
    : options_(std::move(options)), warehouse_(std::move(warehouse)) {}

WarehouseServer::~WarehouseServer() { Stop(); }

Result<std::unique_ptr<WarehouseServer>> WarehouseServer::Start(
    ServerOptions options) {
  std::unique_ptr<Warehouse> warehouse;
  if (options.store_directory.empty()) {
    warehouse = std::make_unique<Warehouse>(options.warehouse);
  } else {
    SAMPWH_ASSIGN_OR_RETURN(std::unique_ptr<FileSampleStore> store,
                            FileSampleStore::Open(options.store_directory));
    const std::string manifest = options.store_directory + "/MANIFEST";
    options.warehouse.manifest_path = manifest;
    if (::access(manifest.c_str(), F_OK) == 0) {
      SAMPWH_ASSIGN_OR_RETURN(
          Warehouse::RestoredWarehouse restored,
          Warehouse::RestoreWithRecovery(options.warehouse, std::move(store),
                                         manifest));
      warehouse = std::move(restored.warehouse);
    } else {
      warehouse =
          std::make_unique<Warehouse>(options.warehouse, std::move(store));
    }
  }

  std::unique_ptr<WarehouseServer> server(
      new WarehouseServer(std::move(options), std::move(warehouse)));

  for (const auto& [name, quota] : server->options_.bootstrap_tenants) {
    SAMPWH_RETURN_IF_ERROR(server->tenants_.CreateTenant(name, quota));
  }

  // Rebuild tenant usage from restored ground truth: every tenant-keyed
  // dataset that survived recovery is re-charged (forced — pre-existing
  // state is fact, not a request that quotas could reject).
  for (const DatasetId& key : server->warehouse_->ListDatasets()) {
    std::string tenant, dataset;
    if (!SplitTenantDatasetKey(key, &tenant, &dataset).ok()) continue;
    if (!server->tenants_.HasTenant(tenant)) continue;
    (void)server->tenants_.ChargeDataset(tenant, /*force=*/true);
    const auto parts = server->warehouse_->ListPartitions(key);
    if (!parts.ok()) continue;
    for (const PartitionInfo& info : parts.value()) {
      const auto sample = server->warehouse_->GetSample(key, info.id);
      const uint64_t bytes = sample.ok() ? sample.value().footprint_bytes() : 0;
      (void)server->tenants_.ChargePartition(tenant, key, info.id, bytes,
                                             /*force=*/true);
    }
  }

  SAMPWH_RETURN_IF_ERROR(server->Listen());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Status WarehouseServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("bind ") + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  // Read back the bound port — the ephemeral-port contract every in-repo
  // test relies on (bind port 0, never race on a fixed number).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void WarehouseServer::ReapConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  // Join finished connections so a long-lived server does not accumulate
  // joinable threads.
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void WarehouseServer::ShedConnection(
    int fd, const Status& reason,
    std::vector<std::pair<int, SteadyTime>>* shed) {
  connections_shed_.fetch_add(1, std::memory_order_relaxed);
  BinaryWriter out;
  BeginResponse(&out, reason);
  (void)WriteFrame(fd, out.Release());
  // FIN after the refusal so the peer sees an orderly end of stream; the
  // close itself is deferred past a short grace window — an immediate
  // close could turn into an RST that discards the buffered response on
  // loopback before the peer reads it.
  ::shutdown(fd, SHUT_WR);
  shed->emplace_back(fd, DeadlineAfterMillis(250));
}

void WarehouseServer::AcceptLoop() {
  std::vector<std::pair<int, SteadyTime>> shed;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 50);

    // Housekeeping runs every tick, accept traffic or not: grace-expired
    // shed fds close, finished connection threads join.
    const SteadyTime now = SteadyNow();
    for (auto it = shed.begin(); it != shed.end();) {
      if (now >= it->second) {
        ::close(it->first);
        it = shed.erase(it);
      } else {
        ++it;
      }
    }
    ReapConnections();

    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion (fd table or kernel memory) is transient:
        // in-flight connections will finish and free their fds. Back off
        // briefly — giving the reap pass above a chance to close finished
        // slots — and keep serving instead of abandoning the listener.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener is gone; nothing to serve anymore
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.read_timeout_millis > 0) {
      timeval tv{};
      tv.tv_sec = options_.read_timeout_millis / 1000;
      tv.tv_usec = (options_.read_timeout_millis % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    if (draining_.load(std::memory_order_acquire)) {
      ShedConnection(fd, Status::Unavailable("server draining"), &shed);
      continue;
    }
    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_acquire) >=
            options_.max_connections) {
      ShedConnection(
          fd,
          Status::ResourceExhausted(
              "connection limit (" +
              std::to_string(options_.max_connections) + ") reached"),
          &shed);
      continue;
    }

    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.fd = fd;
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    conn.thread = std::thread([this, &conn] {
      ServeConnection(conn.fd);
      // Send the FIN now — the peer must observe the drop immediately, not
      // when the accept loop next reaps this slot (which closes the fd).
      ::shutdown(conn.fd, SHUT_RDWR);
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      conn.done.store(true, std::memory_order_release);
    });
  }
  for (const auto& [fd, deadline] : shed) ::close(fd);
}

void WarehouseServer::ServeConnection(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::string payload;
    const Status read = ReadFrame(fd, options_.max_frame_bytes, &payload);
    if (!read.ok()) {
      if (read.IsNotFound()) return;  // orderly EOF between frames
      // Framing is lost (oversized length, CRC mismatch, mid-frame tear,
      // or a slow-loris timeout): answer a best-effort structured error,
      // then drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      BinaryWriter out;
      BeginResponse(&out, read);
      (void)WriteFrame(fd, out.Release());
      return;
    }
    bool shutdown = false;
    const std::string response = HandleRequest(payload, &shutdown);
    if (!WriteFrame(fd, response).ok()) {
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (shutdown) {
      RequestStop();
      return;
    }
  }
}

std::string WarehouseServer::HandleRequest(std::string_view payload,
                                           bool* shutdown) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  BinaryReader req(payload);
  uint32_t verb = 0;
  RequestHeader header;
  Status st = ParseRequestHead(&req, &verb, &header);
  // The propagated deadline covers the whole request from here: handlers
  // and the merge recursion below them poll CheckThreadDeadline(), so a
  // request that cannot finish in time fails fast with a structured
  // kDeadlineExceeded instead of burning a core on an answer nobody waits
  // for.
  std::optional<ScopedThreadDeadline> deadline;
  if (st.ok() && header.deadline_millis > 0) {
    deadline.emplace(DeadlineAfterMillis(header.deadline_millis));
  }
  if (st.ok() && (header.flags & kRequestFlagFailoverRead) != 0) {
    // A coordinator re-drove this request onto us after another owner of
    // the same ids failed; count it so failover traffic shows in stats.
    failover_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  BinaryWriter body;
  if (!st.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  } else if (!IsKnownVerb(verb)) {
    st = Status::InvalidArgument("unknown verb " + std::to_string(verb));
  } else {
    switch (static_cast<Verb>(verb)) {
      case Verb::kPing:
        st = HandlePing(req, body);
        break;
      case Verb::kServerStats:
        st = HandleServerStats(req, body);
        break;
      case Verb::kShutdown:
        if (options_.allow_remote_shutdown) {
          *shutdown = true;
          st = Status::OK();
        } else {
          st = Status::FailedPrecondition("remote shutdown disabled");
        }
        break;
      case Verb::kCreateTenant:
        st = HandleCreateTenant(req);
        break;
      case Verb::kSetTenantQuota:
        st = HandleSetTenantQuota(req);
        break;
      case Verb::kTenantStats:
        st = HandleTenantStats(req, body);
        break;
      case Verb::kListTenants:
        st = HandleListTenants(body);
        break;
      case Verb::kCreateDataset:
        st = HandleCreateDataset(req);
        break;
      case Verb::kDropDataset:
        st = HandleDropDataset(req);
        break;
      case Verb::kListDatasets:
        st = HandleListDatasets(req, body);
        break;
      case Verb::kListPartitions:
        st = HandleListPartitions(req, body);
        break;
      case Verb::kRollIn:
        st = HandleRollIn(req, body, /*explicit_id=*/false);
        break;
      case Verb::kRollInAt:
        st = HandleRollIn(req, body, /*explicit_id=*/true);
        break;
      case Verb::kRollOut:
        st = HandleRollOut(req);
        break;
      case Verb::kReplicaRollIn:
        st = HandleReplicaRollIn(req, body);
        break;
      case Verb::kQuery:
        st = HandleQuery(req, body);
        break;
      case Verb::kPartitionDigests:
        st = HandlePartitionDigests(req, body);
        break;
      case Verb::kIngestOpen:
        st = HandleIngestOpen(req, body);
        break;
      case Verb::kIngestAppend:
        st = HandleIngestAppend(req, body);
        break;
      case Verb::kIngestFlush:
        st = HandleIngestFlush(req, body);
        break;
    }
    if (st.ok() && !req.AtEnd()) {
      st = Status::InvalidArgument("trailing bytes after request body");
    }
  }

  BinaryWriter out;
  BeginResponse(&out, st);
  if (st.ok()) {
    const std::string b = body.Release();
    out.PutRaw(b.data(), b.size());
  } else {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    if (st.IsDeadlineExceeded()) {
      deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return out.Release();
}

Status WarehouseServer::HandlePing(BinaryReader& req, BinaryWriter& resp) {
  (void)req;
  resp.PutString("sampwh.warehouse/1");
  return Status::OK();
}

Status WarehouseServer::HandleServerStats(BinaryReader& req,
                                          BinaryWriter& resp) {
  (void)req;
  const ServerStatsSnapshot s = stats();
  resp.PutVarint64(s.connections_accepted);
  resp.PutVarint64(s.connections_dropped);
  resp.PutVarint64(s.requests_served);
  resp.PutVarint64(s.error_responses);
  resp.PutVarint64(s.protocol_errors);
  resp.PutVarint64(warehouse_->ListDatasets().size());
  // Appended after v1 of the body — an old client simply does not read
  // them, a new client treats them as absent against an old server.
  resp.PutVarint64(s.connections_shed);
  resp.PutVarint64(s.deadlines_exceeded);
  // Replication counters, appended after the PR 8 fields under the same
  // append-only discipline.
  resp.PutVarint64(s.replica_writes);
  resp.PutVarint64(s.failover_reads);
  resp.PutVarint64(s.scrub_rounds);
  resp.PutVarint64(s.partitions_healed);
  resp.PutVarint64(s.digest_mismatches);
  return Status::OK();
}

Status WarehouseServer::HandleCreateTenant(BinaryReader& req) {
  std::string tenant;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&tenant));
  TenantQuota quota;
  SAMPWH_RETURN_IF_ERROR(GetQuotaBody(&req, &quota));
  return tenants_.CreateTenant(tenant, quota);
}

Status WarehouseServer::HandleSetTenantQuota(BinaryReader& req) {
  std::string tenant;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&tenant));
  TenantQuota quota;
  SAMPWH_RETURN_IF_ERROR(GetQuotaBody(&req, &quota));
  return tenants_.SetQuota(tenant, quota);
}

Status WarehouseServer::HandleTenantStats(BinaryReader& req,
                                          BinaryWriter& resp) {
  std::string tenant;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&tenant));
  SAMPWH_ASSIGN_OR_RETURN(const TenantQuota quota, tenants_.GetQuota(tenant));
  SAMPWH_ASSIGN_OR_RETURN(const TenantUsage usage, tenants_.GetUsage(tenant));
  PutQuota(&resp, quota);
  resp.PutVarint64(usage.bytes);
  resp.PutVarint64(usage.partitions);
  resp.PutVarint64(usage.datasets);
  return Status::OK();
}

Status WarehouseServer::HandleListTenants(BinaryWriter& resp) {
  const std::vector<std::string> names = tenants_.ListTenants();
  resp.PutVarint64(names.size());
  for (const std::string& name : names) resp.PutString(name);
  return Status::OK();
}

Status WarehouseServer::ReadScope(BinaryReader& req, std::string* tenant,
                                  DatasetId* key) {
  std::string dataset;
  SAMPWH_RETURN_IF_ERROR(req.GetString(tenant));
  SAMPWH_RETURN_IF_ERROR(req.GetString(&dataset));
  SAMPWH_ASSIGN_OR_RETURN(*key, MakeTenantDatasetKey(*tenant, dataset));
  if (!tenants_.HasTenant(*tenant)) {
    return Status::NotFound("no tenant: " + *tenant);
  }
  return Status::OK();
}

Status WarehouseServer::HandleCreateDataset(BinaryReader& req) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  SAMPWH_RETURN_IF_ERROR(tenants_.ChargeDataset(tenant));
  const Status st = warehouse_->CreateDataset(key);
  if (!st.ok()) tenants_.CreditDataset(tenant, key);
  return st;
}

Status WarehouseServer::HandleDropDataset(BinaryReader& req) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(key);
  }
  (void)warehouse_->DeleteIngestCheckpoint(key);
  SAMPWH_RETURN_IF_ERROR(warehouse_->DropDataset(key));
  tenants_.CreditDataset(tenant, key);
  return Status::OK();
}

Status WarehouseServer::HandleListDatasets(BinaryReader& req,
                                           BinaryWriter& resp) {
  std::string tenant;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&tenant));
  if (!tenants_.HasTenant(tenant)) {
    return Status::NotFound("no tenant: " + tenant);
  }
  std::vector<std::string> names;
  for (const DatasetId& key : warehouse_->ListDatasets()) {
    std::string key_tenant, dataset;
    if (!SplitTenantDatasetKey(key, &key_tenant, &dataset).ok()) continue;
    if (key_tenant == tenant) names.push_back(std::move(dataset));
  }
  resp.PutVarint64(names.size());
  for (const std::string& name : names) resp.PutString(name);
  return Status::OK();
}

Status WarehouseServer::HandleListPartitions(BinaryReader& req,
                                             BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionInfo> parts,
                          warehouse_->ListPartitions(key));
  resp.PutVarint64(parts.size());
  for (const PartitionInfo& info : parts) {
    resp.PutVarint64(info.id);
    resp.PutVarint64(info.parent_size);
    resp.PutVarint64(info.sample_size);
    resp.PutVarint64(static_cast<uint64_t>(info.phase));
    resp.PutVarint64(info.min_timestamp);
    resp.PutVarint64(info.max_timestamp);
  }
  return Status::OK();
}

Status WarehouseServer::HandleRollIn(BinaryReader& req, BinaryWriter& resp,
                                     bool explicit_id) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  uint64_t explicit_partition = 0;
  if (explicit_id) {
    SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&explicit_partition));
  }
  uint64_t min_ts = 0, max_ts = 0;
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&min_ts));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&max_ts));
  std::string blob;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&blob));
  BinaryReader sample_reader(blob);
  SAMPWH_ASSIGN_OR_RETURN(const PartitionSample sample,
                          PartitionSample::DeserializeFrom(&sample_reader));
  const uint64_t bytes = sample.footprint_bytes();

  // Charge-before-mutate: quota exhaustion rejects here, before the
  // warehouse sees anything — never a partial roll-in.
  const PartitionId charge_id =
      explicit_id ? explicit_partition
                  : kProvisionalIdBase +
                        g_provisional_nonce.fetch_add(
                            1, std::memory_order_relaxed);
  SAMPWH_RETURN_IF_ERROR(
      tenants_.ChargePartition(tenant, key, charge_id, bytes));

  const Result<PartitionId> rolled =
      explicit_id
          ? warehouse_->RollInAt(key, explicit_partition, sample, min_ts,
                                 max_ts)
          : warehouse_->RollIn(key, sample, min_ts, max_ts);
  if (!rolled.ok()) {
    tenants_.CreditPartition(tenant, key, charge_id);
    return rolled.status();
  }
  if (!explicit_id) {
    tenants_.RenamePartitionCharge(tenant, key, charge_id, rolled.value());
  }
  resp.PutVarint64(rolled.value());
  return Status::OK();
}

Status WarehouseServer::HandleReplicaRollIn(BinaryReader& req,
                                            BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  uint64_t id = 0, min_ts = 0, max_ts = 0, rflags = 0;
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&id));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&min_ts));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&max_ts));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&rflags));
  std::string blob;
  SAMPWH_RETURN_IF_ERROR(req.GetString(&blob));
  BinaryReader sample_reader(blob);
  SAMPWH_ASSIGN_OR_RETURN(const PartitionSample sample,
                          PartitionSample::DeserializeFrom(&sample_reader));
  const bool heal = (rflags & kReplicaRollInFlagHeal) != 0;
  // The wire blob IS the serialized payload the store envelopes, so its
  // folded CRC matches SampleStore::ContentDigest of a stored copy.
  const uint64_t incoming =
      (static_cast<uint64_t>(Crc32(blob)) << 32) |
      (static_cast<uint64_t>(blob.size()) & 0xffffffffull);

  // Idempotent apply: an identical existing copy acks as success, so the
  // client retries replica writes freely after a transport error.
  const Result<uint64_t> existing = warehouse_->PartitionContentDigest(key, id);
  if (existing.ok() && existing.value() == incoming) {
    replica_writes_.fetch_add(1, std::memory_order_relaxed);
    resp.PutVarint64(id);
    return Status::OK();
  }
  if (existing.ok()) {
    // A live copy with different content under the same id: divergence,
    // repaired in place with the incoming bytes.
    digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
  }

  // Charge-once semantics: quota ADMISSION was decided once, at the
  // primary. The replica records usage as ground truth (forced, replace-
  // aware), so each node's usage equals its stored footprint and roll-out
  // credits stay exact — zero quota drift across heals and retries.
  SAMPWH_RETURN_IF_ERROR(tenants_.ChargePartition(
      tenant, key, id, sample.footprint_bytes(), /*force=*/true));
  Result<PartitionId> rolled =
      warehouse_->RollInAt(key, id, sample, min_ts, max_ts);
  if (!rolled.ok() && rolled.status().IsAlreadyExists()) {
    // The id is occupied by a divergent or unreadable copy: roll it out —
    // the catalog entry clears even when the damaged file was already
    // quarantined aside and the store answers NotFound — then place the
    // healthy bytes.
    const Status out = warehouse_->RollOut(key, id);
    if (!out.ok() && !out.IsNotFound()) {
      tenants_.CreditPartition(tenant, key, id);
      return out;
    }
    rolled = warehouse_->RollInAt(key, id, sample, min_ts, max_ts);
  }
  if (!rolled.ok()) {
    tenants_.CreditPartition(tenant, key, id);
    return rolled.status();
  }
  replica_writes_.fetch_add(1, std::memory_order_relaxed);
  if (heal) partitions_healed_.fetch_add(1, std::memory_order_relaxed);
  resp.PutVarint64(id);
  return Status::OK();
}

Status WarehouseServer::HandleRollOut(BinaryReader& req) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  uint64_t id = 0;
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&id));
  SAMPWH_RETURN_IF_ERROR(warehouse_->RollOut(key, id));
  tenants_.CreditPartition(tenant, key, id);
  return Status::OK();
}

Status WarehouseServer::HandleQuery(BinaryReader& req, BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  uint64_t n = 0;
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&n));
  if (n > req.remaining()) {
    return Status::InvalidArgument("partition-id count exceeds request body");
  }
  std::vector<PartitionId> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&id));
    ids.push_back(id);
  }
  // Fail fast when the client's deadline already passed before the merge
  // starts; the memoized merge recursion polls the same deadline per node.
  SAMPWH_RETURN_IF_ERROR(CheckThreadDeadline());
  const Result<PartitionSample> merged =
      ids.empty() ? warehouse_->MergedSampleAll(key)
                  : warehouse_->MergedSample(key, ids);
  SAMPWH_RETURN_IF_ERROR(merged.status());
  BinaryWriter sample_writer;
  merged.value().SerializeTo(&sample_writer);
  resp.PutString(sample_writer.Release());
  return Status::OK();
}

Status WarehouseServer::HandlePartitionDigests(BinaryReader& req,
                                               BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  SAMPWH_ASSIGN_OR_RETURN(const std::vector<PartitionInfo> parts,
                          warehouse_->ListPartitions(key));
  scrub_rounds_.fetch_add(1, std::memory_order_relaxed);
  // Only READABLE copies are listed: a partition whose stored bytes fail
  // envelope verification is quarantined by the store on this very read
  // and omitted, so the scrubber sees it as a missing replica to
  // re-replicate rather than a healthy digest to trust.
  BinaryWriter entries;
  uint64_t listed = 0;
  for (const PartitionInfo& info : parts) {
    SAMPWH_RETURN_IF_ERROR(CheckThreadDeadline());
    const Result<uint64_t> digest =
        warehouse_->PartitionContentDigest(key, info.id);
    if (!digest.ok()) {
      if (digest.status().IsCorruption() || digest.status().IsNotFound()) {
        continue;
      }
      return digest.status();
    }
    entries.PutVarint64(info.id);
    entries.PutVarint64(digest.value());
    entries.PutVarint64(info.min_timestamp);
    entries.PutVarint64(info.max_timestamp);
    ++listed;
  }
  resp.PutVarint64(listed);
  const std::string e = entries.Release();
  resp.PutRaw(e.data(), e.size());
  return Status::OK();
}

Status WarehouseServer::HandleIngestOpen(BinaryReader& req,
                                         BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  if (!warehouse_->HasDataset(key)) {
    return Status::NotFound("no dataset: " + key);
  }

  std::shared_ptr<IngestSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(key);
    if (it == sessions_.end()) {
      auto fresh = std::make_shared<IngestSession>();
      Result<std::unique_ptr<StreamIngestor>> resumed = StreamIngestor::Resume(
          warehouse_.get(), key,
          MakeCountPartitioner(options_.ingest_partition_elements),
          options_.ingest_checkpoints);
      if (resumed.ok()) {
        fresh->ingestor = std::move(resumed).value();
      } else if (resumed.status().IsNotFound()) {
        fresh->ingestor = std::make_unique<StreamIngestor>(
            warehouse_.get(), key,
            MakeCountPartitioner(options_.ingest_partition_elements));
        fresh->ingestor->EnableCheckpoints(options_.ingest_checkpoints);
        // Force the session's initial state (above all its private RNG)
        // durable BEFORE the open is acked: a client that re-drives its
        // stream after our crash then replays against the exact RNG an
        // uninterrupted run would have used — bit-identical samples.
        SAMPWH_RETURN_IF_ERROR(fresh->ingestor->Checkpoint());
      } else {
        return resumed.status();
      }
      fresh->charged = fresh->ingestor->rolled_in().size();
      it = sessions_.emplace(key, std::move(fresh)).first;
    }
    session = it->second;
  }

  std::lock_guard<std::mutex> lock(session->mu);
  resp.PutVarint64(session->ingestor->next_sequence());
  resp.PutVarint64(session->ingestor->rolled_in().size());
  return Status::OK();
}

Status WarehouseServer::HandleIngestAppend(BinaryReader& req,
                                           BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  uint64_t sequence = 0, timestamp = 0, n = 0;
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&sequence));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&timestamp));
  SAMPWH_RETURN_IF_ERROR(req.GetVarint64(&n));
  if (n > req.remaining()) {
    return Status::InvalidArgument("element count exceeds request body");
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v = 0;
    SAMPWH_RETURN_IF_ERROR(req.GetVarintSigned64(&v));
    values.push_back(v);
  }

  std::shared_ptr<IngestSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(key);
    if (it == sessions_.end()) {
      return Status::FailedPrecondition("no open ingest session for " + key);
    }
    session = it->second;
  }

  std::lock_guard<std::mutex> lock(session->mu);
  SAMPWH_RETURN_IF_ERROR(CheckStreamQuota(tenant));
  SAMPWH_RETURN_IF_ERROR(
      session->ingestor->AppendBatchAt(sequence, values, timestamp));
  ReconcileSessionCharges(tenant, key, session.get());
  resp.PutVarint64(session->ingestor->next_sequence());
  resp.PutVarint64(session->ingestor->rolled_in().size());
  return Status::OK();
}

Status WarehouseServer::HandleIngestFlush(BinaryReader& req,
                                          BinaryWriter& resp) {
  std::string tenant;
  DatasetId key;
  SAMPWH_RETURN_IF_ERROR(ReadScope(req, &tenant, &key));
  std::shared_ptr<IngestSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(key);
    if (it == sessions_.end()) {
      return Status::FailedPrecondition("no open ingest session for " + key);
    }
    session = it->second;
  }
  std::lock_guard<std::mutex> lock(session->mu);
  SAMPWH_RETURN_IF_ERROR(session->ingestor->Flush());
  SAMPWH_RETURN_IF_ERROR(session->ingestor->Checkpoint());
  ReconcileSessionCharges(tenant, key, session.get());
  resp.PutVarint64(session->ingestor->next_sequence());
  resp.PutVarint64(session->ingestor->rolled_in().size());
  return Status::OK();
}

void WarehouseServer::ReconcileSessionCharges(const std::string& tenant,
                                              const DatasetId& key,
                                              IngestSession* session) {
  const std::vector<PartitionId>& rolled = session->ingestor->rolled_in();
  for (size_t i = session->charged; i < rolled.size(); ++i) {
    const auto sample = warehouse_->GetSample(key, rolled[i]);
    const uint64_t bytes = sample.ok() ? sample.value().footprint_bytes() : 0;
    // Forced: the elements were accepted before the partition closed, so
    // usage must record the close even when it lands past a quota; the
    // pre-append gate rejects further elements from then on.
    (void)tenants_.ChargePartition(tenant, key, rolled[i], bytes,
                                   /*force=*/true);
  }
  session->charged = rolled.size();
}

Status WarehouseServer::CheckStreamQuota(const std::string& tenant) {
  SAMPWH_ASSIGN_OR_RETURN(const TenantQuota quota, tenants_.GetQuota(tenant));
  SAMPWH_ASSIGN_OR_RETURN(const TenantUsage usage, tenants_.GetUsage(tenant));
  if (quota.max_bytes != 0 && usage.bytes >= quota.max_bytes) {
    return Status::ResourceExhausted(
        "tenant " + tenant + " byte quota (" +
        std::to_string(quota.max_bytes) + ") exhausted at " +
        std::to_string(usage.bytes) + " bytes");
  }
  if (quota.max_partitions != 0 && usage.partitions >= quota.max_partitions) {
    return Status::ResourceExhausted(
        "tenant " + tenant + " partition quota (" +
        std::to_string(quota.max_partitions) + ") exhausted");
  }
  return Status::OK();
}

ServerStatsSnapshot WarehouseServer::stats() const {
  ServerStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.error_responses = error_responses_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.deadlines_exceeded = deadlines_exceeded_.load(std::memory_order_relaxed);
  s.replica_writes = replica_writes_.load(std::memory_order_relaxed);
  s.failover_reads = failover_reads_.load(std::memory_order_relaxed);
  s.scrub_rounds = scrub_rounds_.load(std::memory_order_relaxed);
  s.partitions_healed = partitions_healed_.load(std::memory_order_relaxed);
  s.digest_mismatches = digest_mismatches_.load(std::memory_order_relaxed);
  return s;
}

void WarehouseServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

bool WarehouseServer::WaitDrained(uint64_t deadline_millis) {
  const SteadyTime deadline = DeadlineAfterMillis(deadline_millis);
  while (active_connections_.load(std::memory_order_acquire) > 0) {
    if (SteadyNow() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

void WarehouseServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void WarehouseServer::Stop() {
  std::call_once(stop_once_, [this] {
    RequestStop();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (Connection& conn : conns_) ::shutdown(conn.fd, SHUT_RDWR);
    }
    // The accept thread is joined, so nobody mutates conns_ anymore.
    for (Connection& conn : conns_) {
      if (conn.thread.joinable()) conn.thread.join();
      ::close(conn.fd);
    }
    conns_.clear();
    // Close the listen socket only now: a connection thread honoring
    // kShutdown reads listen_fd_ inside RequestStop, so the fd must stay
    // open (its number un-reusable) until every such thread is joined.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Park every ingest session durably so a restart resumes it.
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [key, session] : sessions_) {
        std::lock_guard<std::mutex> slock(session->mu);
        (void)session->ingestor->Checkpoint();
      }
    }
    stopped_.store(true, std::memory_order_release);
  });
}

}  // namespace sampwh
