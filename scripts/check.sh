#!/usr/bin/env bash
# Full local verification: an optimized build plus an ASan/UBSan build,
# each running the whole ctest suite, plus the concurrency smoke tiers.
# Usage:
#
#   scripts/check.sh            # optimized + ASan/UBSan configurations
#   scripts/check.sh --fast     # optimized configuration only
#   scripts/check.sh --tsan     # ThreadSanitizer build, concurrency and
#                               # stress tests only (slow; run separately)
#
# STRESS_SOAK=1 scripts/check.sh additionally runs the long stress soak
# (~30 s) in the optimized tree after the test suites. CHAOS_SOAK=1 runs
# the long network-chaos schedule (~20 s) instead of the smoke rounds the
# suite already covers. REPL_SOAK=1 runs the long replication-chaos
# schedule (24 seeded single-node kill/partition rounds at R=2, every
# strict answer required exact).
#
# Build trees go to build-check/<config> so the default build/ tree is
# left alone.

set -euo pipefail

cd "$(dirname "$0")/.."

mode="full"
case "${1:-}" in
  --fast) mode="fast" ;;
  --tsan) mode="tsan" ;;
  "") ;;
  *)
    echo "usage: scripts/check.sh [--fast|--tsan]" >&2
    exit 2
    ;;
esac

run_config() {
  local name="$1"
  shift
  local dir="build-check/${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

if [[ "${mode}" == "tsan" ]]; then
  # ThreadSanitizer pass over the concurrency-sensitive surface: the
  # gtest binaries covering the store/cache/warehouse layers, the
  # warehouse-server battery (thread-per-connection daemon + robustness
  # corpus; needs sampwh_tool for the crash-resume case) and the stress
  # smoke. gtest binaries exit nonzero on failure, and TSan with
  # halt_on_error aborts on the first race, so plain invocation gates.
  dir="build-check/tsan"
  echo "=== [tsan] configure ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  echo "=== [tsan] build ==="
  cmake --build "${dir}" -j "$(nproc)" --target \
    sampwh_util_test sampwh_warehouse_test sampwh_integration_test \
    sampwh_server_test sampwh_tool stress_runner
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  for bin in sampwh_util_test sampwh_warehouse_test sampwh_integration_test \
             sampwh_server_test; do
    echo "=== [tsan] ${bin} ==="
    "${dir}/tests/${bin}"
  done
  echo "=== [tsan] stress smoke ==="
  "${dir}/tests/stress_runner" --smoke
  echo "All TSan checks passed."
  exit 0
fi

run_config relwithdebinfo -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Quick re-gate on the lock-free/bitmask ingestion surface: the SPSC ring,
# shard router, bitmask Bern(q) and ParallelIngestor suites run standalone
# so a regression there fails with a targeted name even though the full
# suite above already covered them.
echo "=== [relwithdebinfo] parallel-ingest unit gate ==="
ctest --test-dir build-check/relwithdebinfo -R \
  "SpscRing|ShardRouter|BatchAccept|ParallelIngestor" --output-on-failure

if [[ "${mode}" == "full" ]]; then
  run_config asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

# Query-path smoke bench (~2 s): exercises the sample cache, parallel
# prefetch and memoized merge tree end to end, asserts warm == cold bytes,
# and fails if the warm speedup regresses below its gate.
echo "=== [relwithdebinfo] query bench (smoke) ==="
(cd build-check/relwithdebinfo/bench && ./bench_query_throughput --smoke)

# Ingest smoke bench (~5 s): exercises every ingestion path including the
# shard-per-core ParallelIngestor; fails if the sharded path stops being
# interleaving-independent or its busy-makespan speedup collapses. Also
# gates checkpoint overhead: >25% at 64Ki cadence (async delta
# checkpointing should be near-free; a synchronous write sneaking back
# onto the hot path fails here) or a cadence writing no snapshot at all.
echo "=== [relwithdebinfo] ingest bench (smoke) ==="
(cd build-check/relwithdebinfo/bench && ./bench_ingest_throughput --smoke)

# Server smoke bench (~2 s): in-process shard deployments driven by
# closed-loop RPC clients. Fails if the distributed merge stops being
# bit-identical to the single-node reference or any server records a
# protocol error under load.
echo "=== [relwithdebinfo] server bench (smoke) ==="
(cd build-check/relwithdebinfo/bench && ./bench_server_loadgen --smoke)

# Network-chaos smoke (~5 s): the failure-domain battery standalone — a
# 4-node sharded deployment behind seeded chaos proxies (partitions,
# resets, black-holes, mid-frame truncations, delays), plus overload
# shedding, drain and the replication battery (write quorums, exact
# replica failover, scrub heal). The ctest suite above already ran these;
# this re-runs them with a targeted name so a serving-path robustness
# regression fails loudly on its own line.
echo "=== [relwithdebinfo] chaos smoke ==="
build-check/relwithdebinfo/tests/sampwh_server_test \
  --gtest_filter='ChaosTest.*:OverloadTest.*:ClientResilienceTest.*:CoordinatorFailureTest.*:ReplicationTest.*'

# Fault-injection stress smoke (~2 s): seeded concurrent
# ingest/query/roll-out rounds against an injected store, checking the
# no-stale-cache / footprint / warm-identity / crash-recovery invariants.
# The ctest suite already ran it once; this prints its round summary.
echo "=== [relwithdebinfo] stress smoke ==="
build-check/relwithdebinfo/tests/stress_runner --smoke

if [[ "${STRESS_SOAK:-0}" != "0" ]]; then
  echo "=== [relwithdebinfo] stress soak ==="
  build-check/relwithdebinfo/tests/stress_runner --soak
fi

if [[ "${CHAOS_SOAK:-0}" != "0" ]]; then
  echo "=== [relwithdebinfo] chaos soak ==="
  CHAOS_SOAK=1 build-check/relwithdebinfo/tests/sampwh_server_test \
    --gtest_filter='ChaosTest.*'
fi

if [[ "${REPL_SOAK:-0}" != "0" ]]; then
  echo "=== [relwithdebinfo] replication soak ==="
  REPL_SOAK=1 build-check/relwithdebinfo/tests/sampwh_server_test \
    --gtest_filter='ReplicationTest.*'
fi

echo "All checks passed."
