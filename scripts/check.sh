#!/usr/bin/env bash
# Full local verification: an optimized build plus an ASan/UBSan build,
# each running the whole ctest suite. Usage:
#
#   scripts/check.sh            # both configurations
#   scripts/check.sh --fast     # optimized configuration only
#
# Build trees go to build-check/<config> so the default build/ tree is
# left alone.

set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

run_config() {
  local name="$1"
  shift
  local dir="build-check/${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== [${name}] test ==="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

run_config relwithdebinfo -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [[ "${fast}" -eq 0 ]]; then
  run_config asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

# Query-path smoke bench (~2 s): exercises the sample cache, parallel
# prefetch and memoized merge tree end to end, asserts warm == cold bytes,
# and fails if the warm speedup regresses below its gate.
echo "=== [relwithdebinfo] query bench (smoke) ==="
(cd build-check/relwithdebinfo/bench && ./bench_query_throughput --smoke)

echo "All checks passed."
