// sampwh_tool — command-line utility over warehouse artifacts.
//
//   sampwh_tool dump <sample-file>
//       Metadata and compact histogram head of one serialized sample.
//   sampwh_tool profile <sample-file>
//       Column profile (min/max/mean, distinct estimate, heavy hitters).
//   sampwh_tool estimate <sample-file> mean|sum|distinct
//       Point estimate with standard error.
//   sampwh_tool merge <out-file> <in-file> <in-file> [in-file...]
//       Uniform merge of samples of DISJOINT partitions (F = 64 KiB).
//   sampwh_tool inspect <store-dir> <manifest-file>
//       Restore a file-backed warehouse and list its catalog.
//   sampwh_tool checkpoints <store-dir>
//       List datasets with pending ingest checkpoints: the resolved replay
//       watermark, open-partition progress, rolled-in count and age, plus
//       the chain structure behind it — snapshot generation and verify
//       status, every WAL delta record with its kind / watermark / CRC
//       status, and whether a torn tail was skipped.
//   sampwh_tool serve <store-dir> [--port N] [--port-file PATH]
//                     [--tenant NAME[:bytes[:partitions[:datasets]]]] ...
//                     [--seed S] [--partition-elements N] [--memo-bytes N]
//       Run the warehouse server daemon over a file-backed store (restores
//       the store's MANIFEST when present). Binds an ephemeral port when
//       --port is omitted and, with --port-file, writes the bound port
//       there so orchestrators never race on a fixed port. Stops on
//       SIGINT/SIGTERM or the kShutdown wire verb.
//   sampwh_tool ping <host> <port>
//   sampwh_tool server-stats <host> <port>
//   sampwh_tool remote-query <host> <port> <tenant> <dataset> <out-file>
//       Client verbs against a running server; remote-query saves the
//       merged sample of every partition to <out-file> (dump/estimate
//       read it back).

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/merge.h"
#include "src/core/sample.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/stats/estimators.h"
#include "src/stats/profile.h"
#include "src/util/serialization.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<PartitionSample> LoadSample(const std::string& path) {
  std::string bytes;
  SAMPWH_RETURN_IF_ERROR(ReadFile(path, &bytes));
  // Store-written files carry the checksummed v2 envelope; merge outputs
  // and pre-envelope files are bare payloads.
  std::string_view payload = bytes;
  if (HasSampleEnvelope(bytes)) {
    SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(bytes, &payload));
  }
  BinaryReader reader(payload);
  return PartitionSample::DeserializeFrom(&reader);
}

Status SaveSample(const std::string& path, const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return WriteFileAtomic(path, WrapSampleEnvelope(writer.buffer()));
}

int CmdDump(const std::string& path) {
  auto sample = LoadSample(path);
  if (!sample.ok()) return Fail(sample.status());
  const PartitionSample& s = sample.value();
  std::printf("file:            %s\n", path.c_str());
  std::printf("phase:           %s\n",
              std::string(SamplePhaseToString(s.phase())).c_str());
  std::printf("parent size:     %llu\n",
              static_cast<unsigned long long>(s.parent_size()));
  std::printf("sample size:     %llu\n",
              static_cast<unsigned long long>(s.size()));
  std::printf("distinct values: %llu\n",
              static_cast<unsigned long long>(s.histogram().distinct_count()));
  std::printf("sampling rate:   %.6g\n", s.sampling_rate());
  std::printf("footprint:       %llu B (bound %llu B)\n",
              static_cast<unsigned long long>(s.footprint_bytes()),
              static_cast<unsigned long long>(s.footprint_bound_bytes()));
  std::printf("entries (first 20, by value):\n");
  int shown = 0;
  for (const auto& [v, n] : s.histogram().SortedEntries()) {
    if (shown++ >= 20) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %lld x%llu\n", static_cast<long long>(v),
                static_cast<unsigned long long>(n));
  }
  return 0;
}

int CmdProfile(const std::string& path) {
  auto sample = LoadSample(path);
  if (!sample.ok()) return Fail(sample.status());
  auto profile = ProfileColumn(sample.value());
  if (!profile.ok()) return Fail(profile.status());
  const ColumnProfile& p = profile.value();
  std::printf("parent size:        %llu\n",
              static_cast<unsigned long long>(p.parent_size));
  std::printf("sample size:        %llu (%s)\n",
              static_cast<unsigned long long>(p.sample_size),
              p.exact ? "exhaustive - exact statistics" : "sampled");
  std::printf("value range:        [%lld, %lld]\n",
              static_cast<long long>(p.min_value),
              static_cast<long long>(p.max_value));
  std::printf("mean:               %.6g\n", p.mean);
  std::printf("distinct in sample: %llu\n",
              static_cast<unsigned long long>(p.distinct_in_sample));
  std::printf("estimated distinct: %.0f\n", p.estimated_distinct);
  std::printf("key likelihood:     %.3f\n", p.key_likelihood);
  std::printf("singleton fraction: %.3f\n", p.singleton_fraction);
  std::printf("heavy hitters:\n");
  for (const HeavyHitter& h : p.heavy_hitters) {
    std::printf("  %lld: %llu in sample (~%.0f in parent)\n",
                static_cast<long long>(h.value),
                static_cast<unsigned long long>(h.sample_count),
                h.estimated_frequency);
  }
  return 0;
}

int CmdEstimate(const std::string& path, const std::string& what) {
  auto sample = LoadSample(path);
  if (!sample.ok()) return Fail(sample.status());
  Result<Estimate> estimate = Status::InvalidArgument(
      "unknown estimator '" + what + "' (want mean|sum|distinct)");
  if (what == "mean") estimate = EstimateMean(sample.value());
  if (what == "sum") estimate = EstimateSum(sample.value());
  if (what == "distinct") estimate = EstimateDistinctCount(sample.value());
  if (!estimate.ok()) return Fail(estimate.status());
  std::printf("%s = %.6g", what.c_str(), estimate.value().value);
  if (estimate.value().exact) {
    std::printf(" (exact)\n");
  } else {
    std::printf(" +/- %.6g SE\n", estimate.value().standard_error);
  }
  return 0;
}

int CmdMerge(const std::vector<std::string>& args) {
  const std::string& out = args[0];
  std::vector<PartitionSample> samples;
  for (size_t i = 1; i < args.size(); ++i) {
    auto sample = LoadSample(args[i]);
    if (!sample.ok()) return Fail(sample.status());
    samples.push_back(std::move(sample).value());
  }
  std::vector<const PartitionSample*> pointers;
  for (const PartitionSample& s : samples) pointers.push_back(&s);
  MergeOptions options;
  options.footprint_bound_bytes = 64 * 1024;
  Pcg64 rng(0x700515EED);
  auto merged = MergeAll(pointers, options, rng);
  if (!merged.ok()) return Fail(merged.status());
  const Status save = SaveSample(out, merged.value());
  if (!save.ok()) return Fail(save);
  std::printf("merged %zu samples -> %s (parent %llu, sample %llu, %s)\n",
              samples.size(), out.c_str(),
              static_cast<unsigned long long>(merged.value().parent_size()),
              static_cast<unsigned long long>(merged.value().size()),
              std::string(SamplePhaseToString(merged.value().phase()))
                  .c_str());
  return 0;
}

int CmdInspect(const std::string& dir, const std::string& manifest) {
  auto store = FileSampleStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  WarehouseOptions options;
  auto warehouse =
      Warehouse::Restore(options, std::move(store).value(), manifest);
  if (!warehouse.ok()) return Fail(warehouse.status());
  for (const DatasetId& dataset : warehouse.value()->ListDatasets()) {
    const auto info = warehouse.value()->GetDatasetInfo(dataset);
    if (!info.ok()) return Fail(info.status());
    std::printf("dataset %s: %llu partitions, %llu parent elements, "
                "%llu sampled\n",
                dataset.c_str(),
                static_cast<unsigned long long>(info.value().num_partitions),
                static_cast<unsigned long long>(
                    info.value().total_parent_size),
                static_cast<unsigned long long>(
                    info.value().total_sample_size));
    const auto parts = warehouse.value()->ListPartitions(dataset);
    if (!parts.ok()) return Fail(parts.status());
    for (const PartitionInfo& p : parts.value()) {
      std::printf("  partition %llu: parent %llu, sample %llu, %s, "
                  "ticks [%llu, %llu]\n",
                  static_cast<unsigned long long>(p.id),
                  static_cast<unsigned long long>(p.parent_size),
                  static_cast<unsigned long long>(p.sample_size),
                  std::string(SamplePhaseToString(p.phase)).c_str(),
                  static_cast<unsigned long long>(p.min_timestamp),
                  static_cast<unsigned long long>(p.max_timestamp));
    }
  }
  return 0;
}

int CmdCheckpoints(const std::string& dir) {
  auto store = FileSampleStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto datasets = store.value()->ListCheckpoints();
  if (!datasets.ok()) return Fail(datasets.status());
  if (datasets.value().empty()) {
    std::printf("no pending ingest checkpoints\n");
    return 0;
  }
  const uint64_t now_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  for (const DatasetId& dataset : datasets.value()) {
    auto chain = store.value()->GetCheckpointChain(dataset);
    if (!chain.ok()) return Fail(chain.status());
    const CheckpointChain& ch = chain.value();
    auto ckpt = ResolveCheckpointChain(ch);
    if (!ckpt.ok()) return Fail(ckpt.status());
    const IngestCheckpoint& c = ckpt.value();
    const double age_seconds =
        now_micros > c.created_unix_micros
            ? static_cast<double>(now_micros - c.created_unix_micros) / 1e6
            : 0.0;
    std::printf("dataset %s: watermark %llu, open partition %llu elements "
                "(%llu sampled), %zu rolled in, %s, age %.1fs\n",
                dataset.c_str(),
                static_cast<unsigned long long>(c.next_sequence),
                static_cast<unsigned long long>(c.progress.elements),
                static_cast<unsigned long long>(c.progress.sample_size),
                c.rolled_in.size(),
                c.pending.has_value() ? "roll-in PENDING" : "no pending roll-in",
                age_seconds);
    std::printf("  chain: generation %llu, snapshot %s, %zu delta record(s)%s\n",
                static_cast<unsigned long long>(ch.generation),
                VerifyCheckpointPayload(ch.snapshot).ok() ? "verified"
                                                          : "INVALID",
                ch.deltas.size(),
                ch.torn_tail ? ", torn WAL tail truncated" : "");
    for (size_t i = 0; i < ch.deltas.size(); ++i) {
      // Records in the chain already passed WAL frame + CRC checks; decode
      // each and re-run deep verification so damage is reported per record.
      auto record = CheckpointDeltaRecord::Deserialize(ch.deltas[i]);
      if (!record.ok()) {
        std::printf("    delta %zu: crc ok, decode FAILED: %s\n", i,
                    record.status().ToString().c_str());
        continue;
      }
      uint64_t watermark = record.value().next_sequence;
      const char* kind = "progress";
      if (record.value().kind == CheckpointDeltaKind::kClosePending) {
        kind = "close-pending";
        auto inner =
            IngestCheckpoint::Deserialize(record.value().checkpoint_payload);
        watermark = inner.ok() ? inner.value().next_sequence : 0;
      }
      const Status deep = VerifyCheckpointDeltaPayload(ch.deltas[i]);
      std::printf("    delta %zu: %-13s watermark %llu, crc ok, %s\n", i,
                  kind, static_cast<unsigned long long>(watermark),
                  deep.ok() ? "verified" : deep.ToString().c_str());
    }
  }
  return 0;
}

std::atomic<bool> g_signalled{false};

void OnSignal(int) { g_signalled.store(true, std::memory_order_release); }

/// "NAME[:bytes[:partitions[:datasets]]]" -> bootstrap tenant entry.
Status ParseTenantSpec(const std::string& spec, std::string* name,
                       TenantQuota* quota) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.empty() || parts.size() > 4) {
    return Status::InvalidArgument("bad tenant spec: " + spec);
  }
  *name = parts[0];
  uint64_t* fields[] = {&quota->max_bytes, &quota->max_partitions,
                        &quota->max_datasets};
  for (size_t i = 1; i < parts.size(); ++i) {
    char* end = nullptr;
    *fields[i - 1] = std::strtoull(parts[i].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad tenant quota in spec: " + spec);
    }
  }
  return ValidateTenantId(*name);
}

int CmdServe(const std::vector<std::string>& args) {
  ServerOptions options;
  options.store_directory = args[0];
  // The server needs the merge memo for the distributed-exactness
  // contract; give it a sane default the flags can override.
  options.warehouse.merge_memo_bytes = 8ull << 20;
  std::string port_file;
  uint64_t drain_millis = 5'000;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (flag == "--port") {
      const std::string* v = next();
      if (v == nullptr) return Fail(Status::InvalidArgument("--port needs N"));
      options.port = static_cast<uint16_t>(std::strtoul(v->c_str(), nullptr,
                                                        10));
    } else if (flag == "--port-file") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--port-file needs PATH"));
      }
      port_file = *v;
    } else if (flag == "--seed") {
      const std::string* v = next();
      if (v == nullptr) return Fail(Status::InvalidArgument("--seed needs S"));
      options.warehouse.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (flag == "--partition-elements") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--partition-elements needs N"));
      }
      options.ingest_partition_elements = std::strtoull(v->c_str(), nullptr,
                                                        10);
    } else if (flag == "--memo-bytes") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--memo-bytes needs N"));
      }
      options.warehouse.merge_memo_bytes = std::strtoull(v->c_str(), nullptr,
                                                         10);
    } else if (flag == "--tenant") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--tenant needs a spec"));
      }
      std::string name;
      TenantQuota quota;
      const Status parsed = ParseTenantSpec(*v, &name, &quota);
      if (!parsed.ok()) return Fail(parsed);
      options.bootstrap_tenants[name] = quota;
    } else if (flag == "--max-connections") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--max-connections needs N"));
      }
      options.max_connections =
          static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (flag == "--drain-millis") {
      const std::string* v = next();
      if (v == nullptr) {
        return Fail(Status::InvalidArgument("--drain-millis needs N"));
      }
      drain_millis = std::strtoull(v->c_str(), nullptr, 10);
    } else {
      return Fail(Status::InvalidArgument("unknown serve flag: " + flag));
    }
  }

  auto server = WarehouseServer::Start(std::move(options));
  if (!server.ok()) return Fail(server.status());

  if (!port_file.empty()) {
    const Status written = WriteFileAtomic(
        port_file, std::to_string(server.value()->port()) + "\n");
    if (!written.ok()) return Fail(written);
  }
  std::printf("serving on %s:%u\n", server.value()->host().c_str(),
              server.value()->port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_signalled.load(std::memory_order_acquire) &&
         !server.value()->stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful teardown on the first signal: refuse new connections with a
  // structured kUnavailable while in-flight work (streaming ingests above
  // all) completes, bounded by --drain-millis; a second signal, or the
  // bound, forces the stop. Stop() itself still checkpoints every ingest
  // session durably.
  if (g_signalled.load(std::memory_order_acquire) && drain_millis > 0 &&
      !server.value()->stop_requested()) {
    std::printf("draining (up to %llu ms)...\n",
                static_cast<unsigned long long>(drain_millis));
    std::fflush(stdout);
    g_signalled.store(false, std::memory_order_release);
    server.value()->BeginDrain();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(drain_millis);
    while (std::chrono::steady_clock::now() < deadline &&
           !g_signalled.load(std::memory_order_acquire)) {
      if (server.value()->WaitDrained(/*deadline_millis=*/50)) break;
    }
  }
  server.value()->Stop();
  std::printf("stopped\n");
  return 0;
}

Result<std::unique_ptr<WarehouseClient>> ToolConnect(const std::string& host,
                                                     const std::string& port) {
  return WarehouseClient::Connect(
      host, static_cast<uint16_t>(std::strtoul(port.c_str(), nullptr, 10)));
}

int CmdPing(const std::string& host, const std::string& port) {
  auto client = ToolConnect(host, port);
  if (!client.ok()) return Fail(client.status());
  auto banner = client.value()->Ping();
  if (!banner.ok()) return Fail(banner.status());
  std::printf("%s\n", banner.value().c_str());
  return 0;
}

int CmdServerStats(const std::string& host, const std::string& port) {
  auto client = ToolConnect(host, port);
  if (!client.ok()) return Fail(client.status());
  auto stats = client.value()->ServerStats();
  if (!stats.ok()) return Fail(stats.status());
  const RemoteServerStats& s = stats.value();
  std::printf("connections accepted: %llu\n",
              static_cast<unsigned long long>(s.connections_accepted));
  std::printf("connections dropped:  %llu\n",
              static_cast<unsigned long long>(s.connections_dropped));
  std::printf("requests served:      %llu\n",
              static_cast<unsigned long long>(s.requests_served));
  std::printf("error responses:      %llu\n",
              static_cast<unsigned long long>(s.error_responses));
  std::printf("protocol errors:      %llu\n",
              static_cast<unsigned long long>(s.protocol_errors));
  std::printf("datasets:             %llu\n",
              static_cast<unsigned long long>(s.num_datasets));
  std::printf("connections shed:     %llu\n",
              static_cast<unsigned long long>(s.connections_shed));
  std::printf("deadlines exceeded:   %llu\n",
              static_cast<unsigned long long>(s.deadlines_exceeded));
  std::printf("replica writes:       %llu\n",
              static_cast<unsigned long long>(s.replica_writes));
  std::printf("failover reads:       %llu\n",
              static_cast<unsigned long long>(s.failover_reads));
  std::printf("scrub rounds:         %llu\n",
              static_cast<unsigned long long>(s.scrub_rounds));
  std::printf("partitions healed:    %llu\n",
              static_cast<unsigned long long>(s.partitions_healed));
  std::printf("digest mismatches:    %llu\n",
              static_cast<unsigned long long>(s.digest_mismatches));
  return 0;
}

int CmdRemoteQuery(const std::vector<std::string>& args) {
  auto client = ToolConnect(args[0], args[1]);
  if (!client.ok()) return Fail(client.status());
  auto sample = client.value()->Query(args[2], args[3]);
  if (!sample.ok()) return Fail(sample.status());
  const Status saved = SaveSample(args[4], sample.value());
  if (!saved.ok()) return Fail(saved);
  std::printf("query %s/%s -> %s (parent %llu, sample %llu, %s)\n",
              args[2].c_str(), args[3].c_str(), args[4].c_str(),
              static_cast<unsigned long long>(sample.value().parent_size()),
              static_cast<unsigned long long>(sample.value().size()),
              std::string(SamplePhaseToString(sample.value().phase()))
                  .c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sampwh_tool dump <sample-file>\n"
      "  sampwh_tool profile <sample-file>\n"
      "  sampwh_tool estimate <sample-file> mean|sum|distinct\n"
      "  sampwh_tool merge <out-file> <in-file> <in-file> [in-file...]\n"
      "  sampwh_tool inspect <store-dir> <manifest-file>\n"
      "  sampwh_tool checkpoints <store-dir>\n"
      "  sampwh_tool serve <store-dir> [--port N] [--port-file PATH]\n"
      "              [--tenant NAME[:bytes[:partitions[:datasets]]]] ...\n"
      "              [--seed S] [--partition-elements N] [--memo-bytes N]\n"
      "              [--max-connections N] [--drain-millis N]\n"
      "  sampwh_tool ping <host> <port>\n"
      "  sampwh_tool server-stats <host> <port>\n"
      "  sampwh_tool remote-query <host> <port> <tenant> <dataset> "
      "<out-file>\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "dump" && args.size() == 1) return CmdDump(args[0]);
  if (command == "profile" && args.size() == 1) return CmdProfile(args[0]);
  if (command == "estimate" && args.size() == 2) {
    return CmdEstimate(args[0], args[1]);
  }
  if (command == "merge" && args.size() >= 3) return CmdMerge(args);
  if (command == "inspect" && args.size() == 2) {
    return CmdInspect(args[0], args[1]);
  }
  if (command == "checkpoints" && args.size() == 1) {
    return CmdCheckpoints(args[0]);
  }
  if (command == "serve" && !args.empty()) return CmdServe(args);
  if (command == "ping" && args.size() == 2) return CmdPing(args[0], args[1]);
  if (command == "server-stats" && args.size() == 2) {
    return CmdServerStats(args[0], args[1]);
  }
  if (command == "remote-query" && args.size() == 5) {
    return CmdRemoteQuery(args);
  }
  return Usage();
}

}  // namespace
}  // namespace sampwh

int main(int argc, char** argv) { return sampwh::Run(argc, argv); }
